//! `pm-coord` — serve N `pm-server --node` processes as one logical engine.
//!
//! ```text
//! pm-coord --topology FILE [--addr HOST:PORT] [--backlog BATCHES]
//!          [--rpc-timeout-ms MS] [--outbox BYTES] [--wait-ms MS] [--log SPEC]
//! ```
//!
//! The topology file lists one `host:port` per line; the line order is the
//! node id. Clients speak the unchanged text protocol to the coordinator:
//!
//! ```text
//! $ pm-server --node --addr 127.0.0.1:7001 --wal-dir /var/pm/n0 &
//! $ pm-server --node --addr 127.0.0.1:7002 --wal-dir /var/pm/n1 &
//! $ printf '127.0.0.1:7001\n127.0.0.1:7002\n' > cluster.topo
//! $ pm-coord --topology cluster.topo &
//! $ printf 'INGEST 1,2,3,4\nSTATS\nQUIT\n' | nc 127.0.0.1 7979
//! ```

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use pm_coord::{serve, Cluster, ClusterConfig, ServeConfig, Topology};

struct Options {
    addr: String,
    topology: Option<PathBuf>,
    cluster: ClusterConfig,
    serve: ServeConfig,
    wait: Duration,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7979".to_owned(),
            topology: None,
            cluster: ClusterConfig::default(),
            serve: ServeConfig::default(),
            wait: Duration::from_secs(10),
        }
    }
}

const USAGE: &str = "pm-coord — cluster coordinator for pm-server nodes

USAGE:
    pm-coord --topology FILE [OPTIONS]

OPTIONS:
    --topology FILE      node addresses, one host:port per line; the line
                         order is the node id (required)
    --addr HOST:PORT     client bind address    [default: 127.0.0.1:7979]
    --backlog BATCHES    replicated ingest batches retained for rejoin
                         replay; a node that falls further behind than the
                         backlog reaches must be restored from its WAL
                         before rejoining  [default: 4096]
    --rpc-timeout-ms MS  per-node control round-trip timeout; a node that
                         misses it is degraded  [default: 10000]
    --outbox BYTES       per-client outbox bound; a subscriber whose
                         unsent event backlog exceeds it is evicted with a
                         terminal `ERR lagged`  [default: 1048576]
    --wait-ms MS         keep retrying the initial node handshakes for MS
                         milliseconds (nodes may still be starting)
                         [default: 10000]
    --log SPEC           log filter, same syntax as PM_LOG; overrides the
                         PM_LOG environment variable  [default: warn]
    --help               print this help

All nodes must be reachable, identically configured (backend, shards,
arity) and at the same applied position when the coordinator starts;
divergence after startup heals through backlog replay on rejoin.
";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let value = args
            .next()
            .ok_or_else(|| format!("{flag} needs a value (see --help)"))?;
        match flag.as_str() {
            "--addr" => opts.addr = value,
            "--topology" => opts.topology = Some(PathBuf::from(value)),
            "--backlog" => {
                let batches: usize = value.parse().map_err(|e| format!("--backlog: {e}"))?;
                if batches == 0 {
                    return Err("--backlog must be at least 1 batch".into());
                }
                opts.cluster.backlog = batches;
            }
            "--rpc-timeout-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|e| format!("--rpc-timeout-ms: {e}"))?;
                if ms == 0 {
                    return Err("--rpc-timeout-ms must be at least 1".into());
                }
                opts.cluster.rpc_timeout = Duration::from_millis(ms);
            }
            "--outbox" => {
                let bytes: usize = value.parse().map_err(|e| format!("--outbox: {e}"))?;
                if bytes == 0 {
                    return Err("--outbox must be at least 1 byte".into());
                }
                opts.serve.max_outbox = bytes;
            }
            "--wait-ms" => {
                let ms: u64 = value.parse().map_err(|e| format!("--wait-ms: {e}"))?;
                opts.wait = Duration::from_millis(ms);
            }
            "--log" => pm_obs::log::set_config_spec(&value),
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

/// Retries [`Cluster::connect`] until `deadline` — nodes started by the
/// same supervisor may not be listening yet.
fn connect_with_retry(
    topology: &Topology,
    config: &ClusterConfig,
    wait: Duration,
) -> Result<Cluster, String> {
    let deadline = Instant::now() + wait;
    loop {
        match Cluster::connect(topology, config.clone()) {
            Ok(cluster) => return Ok(cluster),
            Err(e) if Instant::now() < deadline => {
                pm_obs::info!("pm_coord", "cluster not ready, retrying", error = e);
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => return Err(e),
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("pm-coord: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(path) = &opts.topology else {
        eprintln!("pm-coord: --topology FILE is required (see --help)");
        return ExitCode::FAILURE;
    };
    let topology = match Topology::load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pm-coord: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cluster = match connect_with_retry(&topology, &opts.cluster, opts.wait) {
        Ok(cluster) => cluster,
        Err(e) => {
            eprintln!("pm-coord: {e}");
            return ExitCode::FAILURE;
        }
    };

    let listener = match TcpListener::bind(&opts.addr) {
        Ok(l) => l,
        Err(e) => {
            pm_obs::error!("pm_coord", "cannot bind", addr = opts.addr, error = e);
            return ExitCode::FAILURE;
        }
    };
    // The startup banner is load-bearing (scripts wait for it), so it is
    // printed unconditionally rather than behind the info level.
    eprintln!(
        "pm-coord: listening on {} (cluster of {} nodes, backend {}, seq {})",
        opts.addr,
        cluster.nodes(),
        cluster.backend(),
        cluster.seq()
    );
    if let Err(e) = serve(listener, cluster, opts.serve) {
        pm_obs::error!("pm_coord", "accept loop failed", error = e);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
