//! The cluster state machine: partitioned users over a replicated object
//! stream.
//!
//! One [`Cluster`] turns N `pm-server --node` processes into one logical
//! engine behind the unchanged client wire protocol:
//!
//! * **Objects are replicated.** Every `INGEST` batch is fanned to every
//!   live node as `SEQ <first_id> INGEST <rows>` — write-all then
//!   read-all, a pipelined barrier, so per-node responses arrive in
//!   request order and log order is apply order. The fence (`first_id`
//!   must equal the node's next object id, checked under the node's
//!   ingest lock) makes replication exactly-once positional: a batch
//!   lands at exactly the announced position or not at all, and a node
//!   that answers `ERR seq mismatch` has diverged and is degraded until
//!   it rejoins.
//! * **Users are partitioned.** The same [`pm_model::Partitioner`] the
//!   sharded engine uses for threads assigns each user to a node;
//!   `REGISTER`/`UPDATE`/`UNREGISTER`/`FRONTIER`/`EXPORT` are routed to
//!   the owner and relayed byte-for-byte. A one-node cluster is therefore
//!   wire-identical to a bare `pm-server` on every deterministic verb.
//! * **Reads merge.** `QUERY` unions the per-node target-user sets
//!   (disjoint by partitioning), `STATS` rolls per-node snapshots into a
//!   cluster line with a per-node breakdown, `METRICS` serves the
//!   coordinator's own `pm_node_*` registry ([`crate::obs`]).
//! * **Failure degrades, never corrupts.** A dead node's key range
//!   answers `ERR degraded node=<n>`; everything else keeps serving.
//!   Replicated batches accepted while a node is down are retained in a
//!   bounded backlog; a rejoin (`HEALTH` triggers reconnect attempts)
//!   fences the node's recovered `next_id` against the backlog and
//!   replays the suffix, so the node's own WAL plus the coordinator
//!   backlog reconstruct exactly the stream the live nodes applied.
//! * **Join/leave reuses registration backfill.** [`Cluster::migrate_user`]
//!   drains a user via `EXPORT` + `UNREGISTER` on the old owner and
//!   re-registers on the new owner, whose replicated object stream
//!   rebuilds the frontier — the same machinery `REGISTER` always had.

use std::collections::{BTreeSet, VecDeque};
use std::time::Instant;

use pm_model::{ObjectId, Partitioner, UserId, ValueId};

use crate::node::NodeClient;
use crate::obs::CoordMetrics;
use crate::topology::Topology;

pub use pm_engine::{parse_request, Request};

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Replicated batches retained for rejoin replay. A node that stays
    /// down long enough for the backlog to wrap cannot catch up from the
    /// coordinator and stays degraded (operator restores it by copying a
    /// live node's WAL).
    pub backlog: usize,
    /// Connect and per-response read timeout on node connections.
    pub rpc_timeout: std::time::Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            backlog: 4096,
            rpc_timeout: std::time::Duration::from_secs(10),
        }
    }
}

/// One replicated ingest batch, kept for rejoin replay.
#[derive(Debug)]
struct Batch {
    /// First object id of the batch (the fence).
    seq: u64,
    /// Objects in the batch.
    count: u64,
    /// Canonical row text (`v,v,..;v,v,..`).
    rows: String,
}

/// How the serve loop should act on one parsed client request.
#[derive(Debug)]
pub enum Routed {
    /// A complete response to relay (may contain interior newlines for
    /// `METRICS`).
    Line(String),
    /// Respond, then close the connection.
    Bye(String),
    /// Subscription flows are owned by the serve loop (they need the
    /// per-node event connections and per-client state).
    Subscribe(UserId),
    /// See [`Routed::Subscribe`].
    Unsubscribe(UserId),
}

/// The coordinator's view of the cluster.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<NodeClient>,
    /// Cluster-level liveness, the routing authority. (The control
    /// connection drops itself on any I/O error; this flag records the
    /// *transition* so it is logged, counted and reported exactly once.)
    up: Vec<bool>,
    partitioner: Partitioner,
    backend: String,
    shards: usize,
    arity: usize,
    /// The next object id to assign — the cluster's replication sequence.
    next_seq: u64,
    backlog: VecDeque<Batch>,
    /// Users each node owns, in the coordinator's routing view.
    owned: Vec<BTreeSet<UserId>>,
    start: Instant,
    /// The coordinator's own observability registry.
    pub metrics: CoordMetrics,
    config: ClusterConfig,
    /// Nodes that went down since the serve loop last asked.
    failed: Vec<usize>,
    /// Nodes that rejoined since the serve loop last asked.
    rejoined: Vec<usize>,
}

impl Cluster {
    /// Connects to every node in the topology and validates that they
    /// agree on backend, shard count, arity and applied position. All
    /// nodes must be reachable at startup; divergent applied positions
    /// are refused (restore the lagging node's WAL first) because a
    /// fresh coordinator has no backlog to replay.
    pub fn connect(topology: &Topology, config: ClusterConfig) -> Result<Self, String> {
        let metrics = CoordMetrics::new(topology.nodes());
        let mut nodes = Vec::with_capacity(topology.nodes());
        let mut infos = Vec::with_capacity(topology.nodes());
        for (id, addr) in topology.iter() {
            let mut client = NodeClient::new(addr);
            let info = client
                .connect(config.rpc_timeout)
                .map_err(|e| format!("node {id}: {e}"))?;
            nodes.push(client);
            infos.push(info);
        }
        let first = &infos[0];
        for (id, info) in infos.iter().enumerate() {
            if info.backend != first.backend || info.shards != first.shards {
                return Err(format!(
                    "node {id} runs {}/{} shards but node 0 runs {}/{} shards — \
                     a cluster must be homogeneous",
                    info.backend, info.shards, first.backend, first.shards
                ));
            }
            if info.arity != first.arity {
                return Err(format!(
                    "node {id} expects {}-attribute objects but node 0 expects {} — \
                     the nodes were started with different schemas",
                    info.arity, first.arity
                ));
            }
            if info.next_id != first.next_id {
                return Err(format!(
                    "node {id} is at applied position {} but node 0 is at {} — \
                     restore the lagging node from a live node's WAL before \
                     starting the coordinator",
                    info.next_id, first.next_id
                ));
            }
        }
        for gauge in &metrics.node_up {
            gauge.set(1.0);
        }
        for gauge in &metrics.node_next_id {
            gauge.set(first.next_id as f64);
        }
        metrics.cluster_live.set(nodes.len() as f64);
        metrics.cluster_seq.set(first.next_id as f64);
        let count = nodes.len();
        Ok(Self {
            nodes,
            up: vec![true; count],
            partitioner: Partitioner::new(count),
            backend: first.backend.clone(),
            shards: first.shards,
            arity: first.arity,
            next_seq: first.next_id,
            backlog: VecDeque::new(),
            owned: vec![BTreeSet::new(); count],
            start: Instant::now(),
            metrics,
            config,
            failed: Vec::new(),
            rejoined: Vec::new(),
        })
    }

    /// Number of nodes in the topology.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes currently serving.
    pub fn live(&self) -> usize {
        self.up.iter().filter(|&&up| up).count()
    }

    /// Whether `node` is serving.
    pub fn is_up(&self, node: usize) -> bool {
        self.up[node]
    }

    /// The node that owns `user`.
    pub fn owner_of(&self, user: UserId) -> usize {
        self.partitioner.owner_of(user)
    }

    /// The address of `node` (for the serve loop's event connections).
    pub fn node_addr(&self, node: usize) -> &str {
        self.nodes[node].addr()
    }

    /// Attributes per object.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The cluster's backend spec string (homogeneous by construction).
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// The next replication sequence number.
    pub fn seq(&self) -> u64 {
        self.next_seq
    }

    /// Nodes that went down since the last call (the serve loop drops
    /// their subscriptions and event connections).
    pub fn take_failures(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.failed)
    }

    /// Nodes that rejoined since the last call (the serve loop opens
    /// fresh event connections).
    pub fn take_rejoined(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.rejoined)
    }

    /// Degrades `node`: drops its control connection and remembers the
    /// transition for the serve loop. Also used when the node's *event*
    /// connection dies.
    pub fn mark_down(&mut self, node: usize) {
        self.nodes[node].disconnect();
        if !self.up[node] {
            return;
        }
        self.up[node] = false;
        pm_obs::warn!(
            "pm_coord",
            "node degraded",
            node = node,
            addr = self.nodes[node].addr()
        );
        self.metrics.node_up[node].set(0.0);
        self.metrics.cluster_live.set(self.live() as f64);
        if !self.failed.contains(&node) {
            self.failed.push(node);
        }
    }

    fn degraded_list(&self) -> String {
        let down: Vec<String> = (0..self.nodes.len())
            .filter(|&n| !self.up[n])
            .map(|n| n.to_string())
            .collect();
        if down.is_empty() {
            "-".to_owned()
        } else {
            down.join(",")
        }
    }

    /// One counted, latency-recorded round trip; failure degrades the
    /// node.
    fn rpc(&mut self, node: usize, line: &str) -> Result<String, ()> {
        let start = Instant::now();
        match self.nodes[node].request(line) {
            Ok(response) => {
                self.metrics.node_rpc_ns[node].record_duration(start.elapsed());
                Ok(response)
            }
            Err(e) => {
                pm_obs::warn!("pm_coord", "node rpc failed", node = node, error = e);
                self.mark_down(node);
                Err(())
            }
        }
    }

    /// Handles one client line. Counts the request and any `ERR` answer.
    pub fn handle(&mut self, line: &str) -> Routed {
        self.metrics.requests.inc();
        let routed = self.dispatch(line);
        if let Routed::Line(text) | Routed::Bye(text) = &routed {
            if text.starts_with("ERR ") {
                self.metrics.errors.inc();
            }
        }
        routed
    }

    fn dispatch(&mut self, line: &str) -> Routed {
        let request = match parse_request(line) {
            Ok(request) => request,
            Err(e) => return Routed::Line(format!("ERR {e}")),
        };
        match request {
            Request::Ingest(rows) => Routed::Line(self.ingest(rows)),
            Request::Expire => Routed::Line(self.first_live("EXPIRE")),
            Request::Query(object) => Routed::Line(self.query(object)),
            Request::Frontier(user) => Routed::Line(self.route_owner(user, line)),
            Request::Register { user, .. } => {
                let response = self.route_owner(user, line);
                if response.starts_with("OK REGISTERED ") {
                    self.note_registered(user);
                }
                Routed::Line(response)
            }
            Request::Update { user, .. } => Routed::Line(self.route_owner(user, line)),
            Request::Unregister(user) => {
                let response = self.route_owner(user, line);
                if response.starts_with("OK UNREGISTERED ") {
                    self.note_unregistered(user);
                }
                Routed::Line(response)
            }
            Request::Export(user) => Routed::Line(self.route_owner(user, line)),
            Request::Subscribe(user) => Routed::Subscribe(user),
            Request::Unsubscribe(user) => Routed::Unsubscribe(user),
            Request::Hello(capabilities) => Routed::Line(self.hello(&capabilities)),
            Request::Snapshot => Routed::Line(self.snapshot()),
            Request::Stats => Routed::Line(self.stats()),
            Request::Metrics => Routed::Line(self.exposition()),
            Request::Health => Routed::Line(self.health()),
            Request::Quit => Routed::Bye("OK BYE".to_owned()),
            Request::Sequenced { .. } => Routed::Line("ERR SEQ is a node-internal verb".to_owned()),
        }
    }

    fn note_registered(&mut self, user: UserId) {
        let owner = self.owner_of(user);
        self.owned[owner].insert(user);
        self.metrics.node_users[owner].set(self.owned[owner].len() as f64);
    }

    fn note_unregistered(&mut self, user: UserId) {
        let owner = self.owner_of(user);
        self.owned[owner].remove(&user);
        self.metrics.node_users[owner].set(self.owned[owner].len() as f64);
    }

    /// Replicates one ingest batch to every live node behind a pipelined
    /// barrier and merges the per-node target-user sets (disjoint by
    /// partitioning) into the canonical single-engine response.
    fn ingest(&mut self, rows: Vec<Vec<ValueId>>) -> String {
        // Validate here, once: per-node validation failures would have to
        // agree exactly to keep the streams aligned, so malformed batches
        // never reach a node at all.
        for row in &rows {
            if row.len() != self.arity {
                return format!(
                    "ERR object has {} values, schema has {} attributes",
                    row.len(),
                    self.arity
                );
            }
        }
        let count = rows.len() as u64;
        let body = rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|v| v.raw().to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect::<Vec<_>>()
            .join(";");
        let seq = self.next_seq;
        let line = format!("SEQ {seq} INGEST {body}");

        // Write everywhere before reading anywhere: the barrier costs one
        // round trip regardless of node count.
        let mut sent = Vec::new();
        for node in 0..self.nodes.len() {
            if !self.up[node] {
                continue;
            }
            let start = Instant::now();
            if self.nodes[node].send(&line).is_ok() {
                sent.push((node, start));
            } else {
                self.mark_down(node);
            }
        }
        let mut replies = Vec::new();
        for (node, start) in sent {
            match self.nodes[node].recv() {
                Ok(response) => {
                    self.metrics.node_rpc_ns[node].record_duration(start.elapsed());
                    replies.push((node, response));
                }
                Err(e) => {
                    pm_obs::warn!(
                        "pm_coord",
                        "ingest barrier lost a node",
                        node = node,
                        error = e
                    );
                    self.mark_down(node);
                }
            }
        }
        if replies.is_empty() {
            return format!("ERR degraded node={}", self.degraded_list());
        }

        let mut oks = Vec::new();
        let mut first_err = None;
        for (node, response) in replies {
            if response.starts_with("OK INGESTED ") {
                oks.push(response);
            } else if response.starts_with("ERR seq mismatch") {
                // The node's applied position disagrees with the cluster:
                // it diverged (e.g. an operator fed it directly). Degrade
                // it; a rejoin re-fences it through the backlog.
                pm_obs::error!(
                    "pm_coord",
                    "node diverged",
                    node = node,
                    response = response
                );
                self.mark_down(node);
            } else if first_err.is_none() {
                first_err = Some(response);
            }
        }
        if oks.is_empty() {
            return first_err
                .unwrap_or_else(|| format!("ERR degraded node={}", self.degraded_list()));
        }
        self.next_seq = seq + count;
        self.backlog.push_back(Batch {
            seq,
            count,
            rows: body,
        });
        while self.backlog.len() > self.config.backlog {
            self.backlog.pop_front();
        }
        self.metrics.cluster_seq.set(self.next_seq as f64);
        self.metrics.backlog_batches.set(self.backlog.len() as f64);
        for node in 0..self.nodes.len() {
            if self.up[node] {
                self.metrics.node_next_id[node].set(self.next_seq as f64);
            }
        }
        merge_ingested(&oks)
    }

    /// Serves a read that every replica answers identically from the
    /// first live node.
    fn first_live(&mut self, line: &str) -> String {
        for node in 0..self.nodes.len() {
            if !self.up[node] {
                continue;
            }
            if let Ok(response) = self.rpc(node, line) {
                return response;
            }
        }
        format!("ERR degraded node={}", self.degraded_list())
    }

    /// `QUERY` fans to every node (each knows only its own users' hits)
    /// and unions the answers; with any node down the union would be
    /// silently incomplete, so the whole verb degrades instead.
    fn query(&mut self, object: ObjectId) -> String {
        if self.live() < self.nodes.len() {
            return format!("ERR degraded node={}", self.degraded_list());
        }
        let line = format!("QUERY {}", object.raw());
        let mut sent = Vec::new();
        for node in 0..self.nodes.len() {
            let start = Instant::now();
            if self.nodes[node].send(&line).is_ok() {
                sent.push((node, start));
            } else {
                self.mark_down(node);
            }
        }
        let mut users = BTreeSet::new();
        let mut first_err = None;
        let mut answered = 0usize;
        for (node, start) in sent {
            match self.nodes[node].recv() {
                Ok(response) => {
                    self.metrics.node_rpc_ns[node].record_duration(start.elapsed());
                    if let Some(rest) =
                        response.strip_prefix(&format!("OK QUERY {} ", object.raw()))
                    {
                        for token in rest.split(',').filter(|t| !t.is_empty()) {
                            if let Ok(user) = token.parse::<u32>() {
                                users.insert(user);
                            }
                        }
                        answered += 1;
                    } else if first_err.is_none() {
                        first_err = Some(response);
                    }
                }
                Err(_) => self.mark_down(node),
            }
        }
        if let Some(err) = first_err {
            return err;
        }
        if answered < self.nodes.len() {
            return format!("ERR degraded node={}", self.degraded_list());
        }
        let joined = users
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",");
        format!("OK QUERY {} {joined}", object.raw())
    }

    /// Relays an owner-routed verb byte-for-byte, or degrades its range.
    fn route_owner(&mut self, user: UserId, line: &str) -> String {
        let owner = self.owner_of(user);
        if !self.up[owner] {
            return format!("ERR degraded node={owner}");
        }
        match self.rpc(owner, line.trim()) {
            Ok(response) => response,
            Err(()) => format!("ERR degraded node={owner}"),
        }
    }

    fn hello(&mut self, capabilities: &[String]) -> String {
        for capability in capabilities {
            match capability.as_str() {
                "text" => {}
                "frame" => {
                    return "ERR the coordinator serves the text protocol only \
                            (frame mode is node-local)"
                        .to_owned()
                }
                "node" => return "ERR the coordinator is not a node".to_owned(),
                other => return format!("ERR unknown capability `{other}` (expected text)"),
            }
        }
        format!(
            "OK HELLO pm-coord proto=text version={} backend={} nodes={} shards={} arity={}",
            env!("CARGO_PKG_VERSION"),
            self.backend,
            self.nodes.len(),
            self.shards,
            self.arity
        )
    }

    /// `SNAPSHOT` fans to every live node; the cluster's covered LSN is
    /// the minimum of the per-node answers.
    fn snapshot(&mut self) -> String {
        let mut min_lsn: Option<u64> = None;
        let mut first_err = None;
        for node in 0..self.nodes.len() {
            if !self.up[node] {
                continue;
            }
            if let Ok(response) = self.rpc(node, "SNAPSHOT") {
                match response
                    .strip_prefix("OK SNAPSHOT lsn=")
                    .and_then(|rest| rest.parse::<u64>().ok())
                {
                    Some(lsn) => min_lsn = Some(min_lsn.map_or(lsn, |m| m.min(lsn))),
                    None => {
                        if first_err.is_none() {
                            first_err = Some(response);
                        }
                    }
                }
            }
        }
        if let Some(err) = first_err {
            return err;
        }
        match min_lsn {
            Some(lsn) => format!("OK SNAPSHOT lsn={lsn}"),
            None => format!("ERR degraded node={}", self.degraded_list()),
        }
    }

    /// The cluster `STATS` rollup: one cluster-level line (sums over the
    /// partitioned quantities, agreeing values for the replicated ones)
    /// followed by a ` | node <id>: <body>` breakdown per node.
    fn stats(&mut self) -> String {
        let mut bodies: Vec<Option<String>> = vec![None; self.nodes.len()];
        for (node, slot) in bodies.iter_mut().enumerate() {
            if !self.up[node] {
                continue;
            }
            if let Ok(response) = self.rpc(node, "STATS") {
                if let Some(body) = response.strip_prefix("OK STATS ") {
                    *slot = Some(body.to_owned());
                }
            }
        }
        let sum = |key: &str| -> u64 {
            bodies
                .iter()
                .flatten()
                .map(|body| stat_field(body, key))
                .sum()
        };
        let max = |key: &str| -> u64 {
            bodies
                .iter()
                .flatten()
                .map(|body| stat_field(body, key))
                .max()
                .unwrap_or(0)
        };
        let mut line = format!(
            "OK STATS cluster nodes={} live={} degraded={} seq={} ingested={} users={} \
             registrations={} unregistrations={} updates={} notifications={} expirations={}",
            self.nodes.len(),
            self.live(),
            self.degraded_list(),
            self.next_seq,
            max("ingested="),
            sum("users="),
            sum("registrations="),
            sum("unregistrations="),
            sum("updates="),
            sum("notifications="),
            max("expirations="),
        );
        for (node, body) in bodies.iter().enumerate() {
            match body {
                Some(body) => line.push_str(&format!(" | node {node}: {body}")),
                None => line.push_str(&format!(" | node {node}: down")),
            }
        }
        line
    }

    fn exposition(&mut self) -> String {
        self.metrics.cluster_seq.set(self.next_seq as f64);
        self.metrics.cluster_live.set(self.live() as f64);
        self.metrics.backlog_batches.set(self.backlog.len() as f64);
        let body = self.metrics.render();
        format!("OK METRICS {}\n{body}", body.len())
    }

    /// `HEALTH` is also the deterministic rejoin trigger: every down node
    /// gets one reconnect-and-replay attempt before the answer is built,
    /// so a harness that restarted a node can barrier on a single
    /// `HEALTH` round trip.
    fn health(&mut self) -> String {
        self.try_rejoin_all();
        let users: usize = self.owned.iter().map(BTreeSet::len).sum();
        format!(
            "OK HEALTH pm-coord backend={} nodes={} live={} degraded={} seq={} users={} \
             uptime_ms={}",
            self.backend,
            self.nodes.len(),
            self.live(),
            self.degraded_list(),
            self.next_seq,
            users,
            self.start.elapsed().as_millis()
        )
    }

    /// Attempts to rejoin every down node. Returns the ids that came
    /// back.
    pub fn try_rejoin_all(&mut self) -> Vec<usize> {
        let mut back = Vec::new();
        for node in 0..self.nodes.len() {
            if !self.up[node] && self.try_rejoin(node) {
                back.push(node);
            }
        }
        back
    }

    /// One rejoin attempt: reconnect, re-validate identity, fence the
    /// node's recovered applied position against the backlog and replay
    /// the suffix it missed.
    fn try_rejoin(&mut self, node: usize) -> bool {
        let info = match self.nodes[node].connect(self.config.rpc_timeout) {
            Ok(info) => info,
            Err(e) => {
                pm_obs::debug!("pm_coord", "rejoin attempt failed", node = node, error = e);
                return false;
            }
        };
        if info.backend != self.backend || info.shards != self.shards || info.arity != self.arity {
            pm_obs::error!(
                "pm_coord",
                "rejoining node no longer matches the cluster",
                node = node,
                backend = info.backend,
                shards = info.shards,
                arity = info.arity
            );
            self.nodes[node].disconnect();
            return false;
        }
        if info.next_id > self.next_seq {
            pm_obs::error!(
                "pm_coord",
                "rejoining node is ahead of the cluster",
                node = node,
                node_position = info.next_id,
                cluster_seq = self.next_seq
            );
            self.nodes[node].disconnect();
            return false;
        }
        let mut position = info.next_id;
        if position < self.next_seq {
            // Batches are contiguous (seq_{k+1} = seq_k + count_k) and a
            // node's applied position always sits on a batch boundary, so
            // the replay suffix starts at an exact match or not at all.
            let start = match self.backlog.iter().position(|b| b.seq == position) {
                Some(start) => start,
                None => {
                    pm_obs::error!(
                        "pm_coord",
                        "backlog no longer reaches the node's position",
                        node = node,
                        node_position = position,
                        backlog_from = self.backlog.front().map_or(self.next_seq, |b| b.seq)
                    );
                    self.nodes[node].disconnect();
                    return false;
                }
            };
            for index in start..self.backlog.len() {
                let (line, after) = {
                    let batch = &self.backlog[index];
                    (
                        format!("SEQ {} INGEST {}", batch.seq, batch.rows),
                        batch.seq + batch.count,
                    )
                };
                match self.nodes[node].request(&line) {
                    Ok(response) if response.starts_with("OK INGESTED ") => {
                        self.metrics.node_replays[node].inc();
                        position = after;
                    }
                    Ok(response) => {
                        pm_obs::error!(
                            "pm_coord",
                            "backlog replay rejected",
                            node = node,
                            response = response
                        );
                        self.nodes[node].disconnect();
                        return false;
                    }
                    Err(e) => {
                        pm_obs::warn!(
                            "pm_coord",
                            "node lost again during replay",
                            node = node,
                            error = e
                        );
                        self.nodes[node].disconnect();
                        return false;
                    }
                }
            }
        }
        if position != self.next_seq {
            pm_obs::error!(
                "pm_coord",
                "replay ended short of the cluster sequence",
                node = node,
                position = position,
                cluster_seq = self.next_seq
            );
            self.nodes[node].disconnect();
            return false;
        }
        pm_obs::info!(
            "pm_coord",
            "node rejoined",
            node = node,
            replayed_to = self.next_seq
        );
        self.up[node] = true;
        self.metrics.node_up[node].set(1.0);
        self.metrics.node_next_id[node].set(self.next_seq as f64);
        self.metrics.cluster_live.set(self.live() as f64);
        self.failed.retain(|&n| n != node);
        self.rejoined.push(node);
        true
    }

    /// Moves one user to another node: `EXPORT` the preference from the
    /// old owner, re-`REGISTER` it on the new owner (whose replicated
    /// object stream backfills the frontier — registration's normal
    /// machinery), then drain the old owner with `UNREGISTER`. The
    /// building block of a topology resize.
    pub fn migrate_user(&mut self, user: UserId, from: usize, to: usize) -> Result<(), String> {
        let exported = self
            .rpc(from, &format!("EXPORT {}", user.raw()))
            .map_err(|()| format!("node {from} died during export"))?;
        let rows = exported
            .strip_prefix(&format!("OK EXPORTED {} ", user.raw()))
            .ok_or_else(|| format!("export failed: {exported}"))?
            .to_owned();
        let registered = self
            .rpc(to, &format!("REGISTER {} {rows}", user.raw()))
            .map_err(|()| format!("node {to} died during re-register"))?;
        if !registered.starts_with("OK REGISTERED ") {
            return Err(format!("re-register failed: {registered}"));
        }
        let drained = self
            .rpc(from, &format!("UNREGISTER {}", user.raw()))
            .map_err(|()| format!("node {from} died during drain"))?;
        if !drained.starts_with("OK UNREGISTERED ") {
            return Err(format!("drain failed: {drained}"));
        }
        self.owned[from].remove(&user);
        self.owned[to].insert(user);
        self.metrics.node_users[from].set(self.owned[from].len() as f64);
        self.metrics.node_users[to].set(self.owned[to].len() as f64);
        Ok(())
    }
}

/// Merges per-node `OK INGESTED` lines: group `k` of every node reports
/// the same object id with that node's own (disjoint) target users, so
/// the cluster response is the per-group union — byte-identical to what
/// one engine over the whole population renders.
fn merge_ingested(responses: &[String]) -> String {
    let mut merged: Vec<(String, BTreeSet<u32>)> = Vec::new();
    let mut count = 0usize;
    for response in responses {
        let rest = match response.strip_prefix("OK INGESTED ") {
            Some(rest) => rest,
            None => continue,
        };
        let (n, body) = match rest.split_once(' ') {
            Some((n, body)) => (n, body),
            None => (rest, ""),
        };
        count = n.parse().unwrap_or(count);
        for (index, group) in body.split(';').enumerate() {
            let (id, users) = match group.split_once(':') {
                Some(pair) => pair,
                None => continue,
            };
            if merged.len() <= index {
                merged.push((id.to_owned(), BTreeSet::new()));
            }
            for token in users.split(',').filter(|t| !t.is_empty()) {
                if let Ok(user) = token.parse::<u32>() {
                    merged[index].1.insert(user);
                }
            }
        }
    }
    let body = merged
        .iter()
        .map(|(id, users)| {
            let joined = users
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",");
            format!("{id}:{joined}")
        })
        .collect::<Vec<_>>()
        .join(";");
    format!("OK INGESTED {count} {body}")
}

/// Extracts `key=<u64>` from a STATS body; `key` includes the `=`.
fn stat_field(body: &str, key: &str) -> u64 {
    body.split_whitespace()
        .find_map(|token| token.strip_prefix(key))
        .and_then(|value| value.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_disjoint_target_user_sets() {
        let merged = merge_ingested(&[
            "OK INGESTED 2 7:1,4;8:".to_owned(),
            "OK INGESTED 2 7:2;8:9".to_owned(),
            "OK INGESTED 2 7:;8:".to_owned(),
        ]);
        assert_eq!(merged, "OK INGESTED 2 7:1,2,4;8:9");
    }

    #[test]
    fn merge_of_one_response_is_the_identity() {
        let line = "OK INGESTED 2 3:1,2;4:";
        assert_eq!(merge_ingested(&[line.to_owned()]), line);
    }

    #[test]
    fn stat_fields_parse_from_a_snapshot_body() {
        let body = "ingested=42 arrivals_per_sec=1.0 users=7 shard_users=3,4 \
                    registrations=9 notifications=120 expirations=5";
        assert_eq!(stat_field(body, "ingested="), 42);
        assert_eq!(stat_field(body, "users="), 7);
        assert_eq!(stat_field(body, "notifications="), 120);
        assert_eq!(stat_field(body, "missing="), 0);
    }
}
