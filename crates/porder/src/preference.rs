//! Per-user (and per-cluster) preferences over all attributes, and the
//! object-dominance test of Def. 3.2.

use std::collections::HashMap;

use pm_model::{AttrId, Object, ValueId};

use crate::relation::Relation;

/// The outcome of comparing two objects under a [`Preference`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// The left object dominates the right one (`o ≻_c o'`).
    Dominates,
    /// The left object is dominated by the right one (`o' ≻_c o`).
    DominatedBy,
    /// The two objects are identical on every attribute (`o = o'`).
    Identical,
    /// Neither object dominates the other.
    Incomparable,
}

impl Dominance {
    /// The comparison with left and right swapped.
    pub fn flip(self) -> Dominance {
        match self {
            Dominance::Dominates => Dominance::DominatedBy,
            Dominance::DominatedBy => Dominance::Dominates,
            other => other,
        }
    }
}

/// A user's preferences: one strict partial order per attribute.
///
/// A *virtual user* (a cluster `U`, Def. 4.1) is represented by the same
/// type: its relations are the common (or approximate common) preference
/// relations of the member users.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Preference {
    relations: Vec<Relation>,
}

impl Preference {
    /// Creates a preference with `arity` empty attribute relations.
    pub fn new(arity: usize) -> Self {
        Self {
            relations: vec![Relation::new(); arity],
        }
    }

    /// Builds a preference from per-attribute relations (in attribute order).
    pub fn from_relations(relations: Vec<Relation>) -> Self {
        Self { relations }
    }

    /// Number of attributes covered (`|D|`).
    pub fn arity(&self) -> usize {
        self.relations.len()
    }

    /// The relation for attribute `attr`.
    ///
    /// # Panics
    /// Panics if `attr` is out of range.
    pub fn relation(&self, attr: AttrId) -> &Relation {
        &self.relations[attr.index()]
    }

    /// Mutable access to the relation for attribute `attr`.
    ///
    /// # Panics
    /// Panics if `attr` is out of range.
    pub fn relation_mut(&mut self, attr: AttrId) -> &mut Relation {
        &mut self.relations[attr.index()]
    }

    /// Iterates over `(AttrId, &Relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (AttrId, &Relation)> + '_ {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (AttrId::from(i), r))
    }

    /// Adds a preference tuple `x ≻ y` on attribute `attr`.
    ///
    /// # Panics
    /// Panics if the tuple violates the strict-partial-order properties;
    /// use [`Relation::insert`] directly for fallible insertion.
    pub fn prefer(&mut self, attr: AttrId, x: ValueId, y: ValueId) -> &mut Self {
        self.relations[attr.index()]
            .insert(x, y)
            .expect("preference tuple must keep the relation a strict partial order");
        self
    }

    /// Total number of preference tuples across all attributes.
    pub fn total_pairs(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Approximate heap bytes of the build-time hash-map form (see
    /// [`Relation::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .relations
                .iter()
                .map(Relation::approx_bytes)
                .sum::<usize>()
    }

    /// Whether the preference holds no tuples at all.
    pub fn is_empty(&self) -> bool {
        self.relations.iter().all(Relation::is_empty)
    }

    /// Whether value `x` is preferred to `y` on attribute `attr`.
    #[inline]
    pub fn prefers(&self, attr: AttrId, x: ValueId, y: ValueId) -> bool {
        self.relations[attr.index()].prefers(x, y)
    }

    /// Whether object `a` dominates object `b` (Def. 3.2): `a` is identical
    /// or preferred to `b` on every attribute and strictly preferred on at
    /// least one.
    pub fn dominates(&self, a: &Object, b: &Object) -> bool {
        matches!(self.compare(a, b), Dominance::Dominates)
    }

    /// Full three-way-plus-identical comparison of two objects.
    ///
    /// Only the first `self.arity()` attributes of the objects are
    /// considered, which lets dimensionality-sweep experiments reuse objects
    /// built for the full schema.
    pub fn compare(&self, a: &Object, b: &Object) -> Dominance {
        let mut a_better = false;
        let mut b_better = false;
        for (idx, rel) in self.relations.iter().enumerate() {
            let attr = AttrId::from(idx);
            let (av, bv) = (a.value(attr), b.value(attr));
            if av == bv {
                continue;
            }
            if rel.prefers(av, bv) {
                a_better = true;
            } else if rel.prefers(bv, av) {
                b_better = true;
            } else {
                // Incomparable on this attribute: neither can dominate.
                return Dominance::Incomparable;
            }
            if a_better && b_better {
                return Dominance::Incomparable;
            }
        }
        match (a_better, b_better) {
            (true, false) => Dominance::Dominates,
            (false, true) => Dominance::DominatedBy,
            (false, false) => Dominance::Identical,
            (true, true) => Dominance::Incomparable,
        }
    }

    /// The common preference of a set of users (Def. 4.1): the per-attribute
    /// intersection of their relations. Returns an empty preference when the
    /// iterator is empty.
    pub fn common_of<'a, I>(preferences: I) -> Preference
    where
        I: IntoIterator<Item = &'a Preference>,
    {
        let mut iter = preferences.into_iter();
        let Some(first) = iter.next() else {
            return Preference::default();
        };
        let mut relations: Vec<Relation> = first.relations.clone();
        for pref in iter {
            for (idx, rel) in relations.iter_mut().enumerate() {
                if rel.is_empty() {
                    continue;
                }
                *rel = rel.intersection(&pref.relations[idx]);
            }
        }
        Preference { relations }
    }

    /// Restricts the preference to its first `k` attributes.
    pub fn project(&self, k: usize) -> Preference {
        Preference {
            relations: self.relations[..k.min(self.relations.len())].to_vec(),
        }
    }
}

/// Builds per-attribute relations from 2-D dominance statistics, one stats
/// map per attribute (the paper's preference-simulation rule, Sec. 8.1).
pub fn preference_from_stats(stats: &[HashMap<ValueId, (f64, f64)>]) -> Preference {
    Preference::from_relations(stats.iter().map(Relation::from_dominance_stats).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::ObjectId;

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn a(i: u32) -> AttrId {
        AttrId::new(i)
    }

    fn obj(id: u64, vals: &[u32]) -> Object {
        Object::new(ObjectId::new(id), vals.iter().map(|&x| v(x)).collect())
    }

    /// Encodes the paper's laptop example (Tables 1 & 2) for user c1.
    ///
    /// display: 9.9-under=0, 10-12.9=1, 13-15.9=2, 16-18.9=3, 19-up=4
    /// brand:   Apple=0, Lenovo=1, Samsung=2, Sony=3, Toshiba=4
    /// cpu:     single=0, dual=1, triple=2, quad=3
    fn c1() -> Preference {
        let mut p = Preference::new(3);
        // display: 13-15.9 ≻ 10-12.9 ≻ {16-18.9, 19-up, 9.9-under}... Table 2 c1:
        // 13-15.9 ≻ 10-12.9, 10-12.9 ≻ 16-18.9, 10-12.9 ≻ 19-up, 10-12.9 ≻ 9.9-under
        p.prefer(a(0), v(2), v(1));
        p.prefer(a(0), v(1), v(3));
        p.prefer(a(0), v(1), v(4));
        p.prefer(a(0), v(1), v(0));
        // brand: Apple ≻ Lenovo ≻ {Toshiba, Samsung}, Apple ≻ Sony
        p.prefer(a(1), v(0), v(1));
        p.prefer(a(1), v(1), v(4));
        p.prefer(a(1), v(1), v(2));
        p.prefer(a(1), v(0), v(3));
        // cpu: dual ≻ {triple, quad} ≻ single
        p.prefer(a(2), v(1), v(2));
        p.prefer(a(2), v(1), v(3));
        p.prefer(a(2), v(2), v(0));
        p.prefer(a(2), v(3), v(0));
        p
    }

    #[test]
    fn example_1_1_o2_dominates_o1_for_c1() {
        let p = c1();
        // o1 = <12 (10-12.9=1), Apple=0, single=0>, o2 = <14 (13-15.9=2), Apple=0, dual=1>
        let o1 = obj(1, &[1, 0, 0]);
        let o2 = obj(2, &[2, 0, 1]);
        assert_eq!(p.compare(&o2, &o1), Dominance::Dominates);
        assert_eq!(p.compare(&o1, &o2), Dominance::DominatedBy);
        assert!(p.dominates(&o2, &o1));
    }

    #[test]
    fn example_1_1_o1_o3_incomparable_for_c1() {
        let p = c1();
        // o3 = <15 (2), Samsung=2, dual=1>; c1 prefers Apple to Samsung so o1 vs o3 incomparable.
        let o1 = obj(1, &[1, 0, 0]);
        let o3 = obj(3, &[2, 2, 1]);
        assert_eq!(p.compare(&o1, &o3), Dominance::Incomparable);
        assert_eq!(p.compare(&o3, &o1), Dominance::Incomparable);
    }

    #[test]
    fn example_1_1_o15_dominated_by_o2_for_c1() {
        let p = c1();
        // o15 = <16.5 (16-18.9=3), Lenovo=1, quad=3>, o2 = <14 (2), Apple=0, dual=1>
        let o15 = obj(15, &[3, 1, 3]);
        let o2 = obj(2, &[2, 0, 1]);
        assert_eq!(p.compare(&o2, &o15), Dominance::Dominates);
    }

    #[test]
    fn identical_objects_compare_identical() {
        let p = c1();
        let o = obj(1, &[2, 0, 1]);
        let o_copy = obj(9, &[2, 0, 1]);
        assert_eq!(p.compare(&o, &o_copy), Dominance::Identical);
        assert!(!p.dominates(&o, &o_copy));
    }

    #[test]
    fn dominance_flip_is_involutive() {
        assert_eq!(Dominance::Dominates.flip(), Dominance::DominatedBy);
        assert_eq!(Dominance::DominatedBy.flip(), Dominance::Dominates);
        assert_eq!(Dominance::Identical.flip(), Dominance::Identical);
        assert_eq!(Dominance::Incomparable.flip(), Dominance::Incomparable);
    }

    #[test]
    fn compare_is_antisymmetric_on_example_objects() {
        let p = c1();
        let objects = [
            obj(1, &[1, 0, 0]),
            obj(2, &[2, 0, 1]),
            obj(3, &[2, 2, 1]),
            obj(15, &[3, 1, 3]),
        ];
        for x in &objects {
            for y in &objects {
                assert_eq!(p.compare(x, y), p.compare(y, x).flip());
            }
        }
    }

    #[test]
    fn common_of_matches_paper_cpu_example() {
        // c1 cpu: dual ≻ single, dual ≻ quad, dual ≻ triple, triple ≻ single, quad ≻ single
        // c2 cpu: quad ≻ triple ≻ dual ≻ single (closure adds the rest)
        // common: {(dual,single),(triple,single),(quad,single)}
        let mut p1 = Preference::new(1);
        p1.prefer(a(0), v(1), v(0));
        p1.prefer(a(0), v(1), v(3));
        p1.prefer(a(0), v(1), v(2));
        p1.prefer(a(0), v(2), v(0));
        p1.prefer(a(0), v(3), v(0));
        let mut p2 = Preference::new(1);
        p2.prefer(a(0), v(3), v(2));
        p2.prefer(a(0), v(2), v(1));
        p2.prefer(a(0), v(1), v(0));
        let common = Preference::common_of([&p1, &p2]);
        let rel = common.relation(a(0));
        assert_eq!(rel.len(), 3);
        assert!(rel.prefers(v(1), v(0)));
        assert!(rel.prefers(v(2), v(0)));
        assert!(rel.prefers(v(3), v(0)));
    }

    #[test]
    fn common_of_empty_iterator_is_empty() {
        let common = Preference::common_of(std::iter::empty::<&Preference>());
        assert_eq!(common.arity(), 0);
        assert!(common.is_empty());
    }

    #[test]
    fn projection_restricts_comparison_to_prefix() {
        let p = c1();
        let p2 = p.project(2);
        assert_eq!(p2.arity(), 2);
        // o4 = <19 (4), Toshiba=4, dual=1> vs o2 = <14 (2), Apple=0, dual=1>:
        // on 2 attributes o2 still dominates o4.
        let o4 = obj(4, &[4, 4, 1]);
        let o2 = obj(2, &[2, 0, 1]);
        assert_eq!(p2.compare(&o2, &o4), Dominance::Dominates);
    }

    #[test]
    fn preference_from_stats_builds_all_attributes() {
        let stats = vec![
            [(v(0), (5.0, 3.0)), (v(1), (4.0, 2.0))]
                .into_iter()
                .collect::<HashMap<_, _>>(),
            [(v(0), (1.0, 1.0)), (v(1), (2.0, 2.0))]
                .into_iter()
                .collect::<HashMap<_, _>>(),
        ];
        let p = preference_from_stats(&stats);
        assert_eq!(p.arity(), 2);
        assert!(p.prefers(a(0), v(0), v(1)));
        assert!(p.prefers(a(1), v(1), v(0)));
        assert_eq!(p.total_pairs(), 2);
    }

    #[test]
    fn incomparable_short_circuit_does_not_claim_dominance() {
        let mut p = Preference::new(2);
        p.prefer(a(0), v(0), v(1));
        // attribute 1 left empty ⇒ any differing values are incomparable.
        let x = obj(0, &[0, 5]);
        let y = obj(1, &[1, 6]);
        assert_eq!(p.compare(&x, &y), Dominance::Incomparable);
    }
}
