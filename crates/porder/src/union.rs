//! Relation unions and the preference universe — the dominance kernel
//! behind exact bounded-memory history compaction.
//!
//! Append-only monitors must retain past objects so a mid-stream
//! `REGISTER`/`UPDATE` can backfill a frontier by replay. Retaining the
//! whole stream is unbounded; truncating it makes backfill inexact. The
//! alternative implemented here keeps backfill *exact* for every
//! preference the system has ever seen while retaining only the objects
//! that some such preference still places on a frontier (the per-user
//! *skyline union*):
//!
//! * [`RelationUnion`] — the per-attribute union `U_d = ∪_c ≻ᵈ_c` of every
//!   observed relation, as a growable bit matrix in the style of
//!   [`CompiledRelation`](crate::CompiledRelation). Unlike a
//!   [`Relation`](crate::Relation) it need not be a strict partial order
//!   (two users may disagree on a value pair), so it is a separate type: a
//!   pure edge set with O(1) membership.
//! * [`PreferenceUniverse`] — the set of *distinct* preferences ever
//!   observed (compiled, deduplicated), together with their per-attribute
//!   [`RelationUnion`]s. It answers the two questions compaction needs:
//!   [`PreferenceUniverse::union_dominates`], a cheap *necessary* condition
//!   for "some observed preference lets `a` dominate `b`" used to prune
//!   candidate pairs, and [`PreferenceUniverse::members`], the authoritative
//!   per-preference dominance checks. [`PreferenceUniverse::absorb`]
//!   reports whether a preference brought *novel* tuples (outside the
//!   current union) — the one case where an already-compacted history
//!   cannot promise exact backfill.

use std::collections::{HashMap, HashSet};

use pm_model::{AttrId, Object, ValueId};

use crate::compiled::CompiledPreference;
use crate::preference::Preference;

/// The union of several strict partial orders over one attribute, as a
/// growable bit matrix: bit `j` of row `i` is set iff some absorbed
/// relation prefers `universe[i]` to `universe[j]`.
///
/// The union of strict partial orders is generally *not* a strict partial
/// order (observers may disagree on a pair's direction), so this type keeps
/// a plain edge set: [`RelationUnion::contains`] is a single shift-and-mask
/// like [`CompiledRelation::prefers`], but no order laws are implied.
///
/// [`CompiledRelation::prefers`]: crate::CompiledRelation::prefers
#[derive(Debug, Clone, Default)]
pub struct RelationUnion {
    /// `ValueId.raw() → dense index`; values are interned on first sight.
    index_of: HashMap<u32, u32>,
    /// Dense index → interned value, in interning order.
    universe: Vec<ValueId>,
    /// Width of each bit-row in 64-bit words.
    words_per_row: usize,
    /// `universe.len() * words_per_row` words, row-major.
    bits: Vec<u64>,
    /// Number of distinct edges (total popcount).
    len: usize,
}

impl RelationUnion {
    /// An empty union.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct `(x, y)` edges absorbed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no edge has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether some absorbed relation prefers `x` to `y`.
    #[inline]
    pub fn contains(&self, x: ValueId, y: ValueId) -> bool {
        match (self.index_of.get(&x.raw()), self.index_of.get(&y.raw())) {
            (Some(&ix), Some(&iy)) => {
                let (ix, iy) = (ix as usize, iy as usize);
                (self.bits[ix * self.words_per_row + iy / 64] >> (iy % 64)) & 1 == 1
            }
            _ => false,
        }
    }

    /// Interns `v`, growing (and if necessary re-laying-out) the bit matrix.
    fn intern(&mut self, v: ValueId) -> usize {
        if let Some(&ix) = self.index_of.get(&v.raw()) {
            return ix as usize;
        }
        let ix = self.universe.len();
        self.universe.push(v);
        self.index_of.insert(v.raw(), ix as u32);
        let words = (ix + 1).div_ceil(64);
        if words != self.words_per_row {
            // Row width grew: re-lay out the matrix word by word.
            let old_words = self.words_per_row;
            let mut bits = vec![0u64; (ix + 1) * words];
            for row in 0..ix {
                bits[row * words..row * words + old_words]
                    .copy_from_slice(&self.bits[row * old_words..(row + 1) * old_words]);
            }
            self.bits = bits;
            self.words_per_row = words;
        } else {
            self.bits.extend(std::iter::repeat(0u64).take(words));
        }
        ix
    }

    /// Adds one edge, returning whether it was new.
    pub fn insert(&mut self, x: ValueId, y: ValueId) -> bool {
        let ix = self.intern(x);
        let iy = self.intern(y);
        let word = &mut self.bits[ix * self.words_per_row + iy / 64];
        let mask = 1u64 << (iy % 64);
        if *word & mask != 0 {
            return false;
        }
        *word |= mask;
        self.len += 1;
        true
    }

    /// Absorbs every edge of `relation`, returning how many were new.
    pub fn absorb(&mut self, relation: &crate::Relation) -> usize {
        let mut added = 0;
        for (x, y) in relation.pairs() {
            if self.insert(x, y) {
                added += 1;
            }
        }
        added
    }

    /// Whether every edge of `relation` is already in the union.
    pub fn covers(&self, relation: &crate::Relation) -> bool {
        relation.pairs().all(|(x, y)| self.contains(x, y))
    }
}

/// Per-attribute sorted tuple lists — the structural identity of a
/// preference, used to deduplicate universe members.
type Fingerprint = Vec<Vec<(u32, u32)>>;

fn fingerprint(preference: &Preference) -> Fingerprint {
    preference
        .relations()
        .map(|(_, rel)| {
            let mut pairs: Vec<(u32, u32)> = rel.pairs().map(|(x, y)| (x.raw(), y.raw())).collect();
            pairs.sort_unstable();
            pairs
        })
        .collect()
}

/// Every *distinct* preference a monitor has ever observed, plus the
/// per-attribute [`RelationUnion`] of their relations.
///
/// This is the dominance authority for history compaction: an object may be
/// evicted only when, **for every member preference**, some retained object
/// dominates it — i.e. the retained set is exactly the union of the
/// members' skylines (plus value-duplicates). That criterion is monotone in
/// the member set, so the universe only ever grows ([`absorb`]); observing
/// a user leaving does not shrink it, which is what keeps backfill exact
/// when a previously-seen preference re-registers later.
///
/// [`absorb`]: PreferenceUniverse::absorb
#[derive(Debug, Clone, Default)]
pub struct PreferenceUniverse {
    members: Vec<CompiledPreference>,
    fingerprints: HashSet<Fingerprint>,
    unions: Vec<RelationUnion>,
    /// Whether any member carries no tuple at all (see
    /// [`PreferenceUniverse::has_empty_member`]).
    has_empty_member: bool,
}

impl PreferenceUniverse {
    /// An empty universe (no preference observed yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct preferences observed.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no preference has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The distinct observed preferences, compiled.
    pub fn members(&self) -> &[CompiledPreference] {
        &self.members
    }

    /// Total number of distinct `(attribute, x ≻ y)` tuples in the union.
    pub fn union_len(&self) -> usize {
        self.unions.iter().map(RelationUnion::len).sum()
    }

    /// Whether every tuple of `preference` is already inside the union —
    /// i.e. absorbing it would *not* widen the per-attribute edge sets.
    /// Note this is **not** the exactness criterion for compacted
    /// backfill: a never-seen preference that is *weaker* than the union
    /// (a tuple subset, or the empty preference) is fully covered yet its
    /// full-stream frontier can contain objects every *member* preference
    /// had voted off. Exactness is keyed on membership
    /// ([`PreferenceUniverse::contains`]), coverage only tells whether the
    /// dominance pre-filter would widen.
    pub fn covers(&self, preference: &Preference) -> bool {
        preference.relations().all(|(attr, rel)| {
            self.unions
                .get(attr.index())
                .map_or(rel.is_empty(), |union| union.covers(rel))
        })
    }

    /// Whether a structurally identical preference has been absorbed
    /// before. Compacted backfill is exact precisely for member
    /// preferences: each sweep retains every member's full-stream skyline.
    pub fn contains(&self, preference: &Preference) -> bool {
        self.fingerprints.contains(&fingerprint(preference))
    }

    /// Observes `preference`: adds it to the member set (deduplicated) and
    /// its tuples to the per-attribute unions. Returns `true` when the
    /// preference was **not previously a member** — the novel case: sweeps
    /// run before this call did not protect this preference's skyline, so
    /// a backfill for it may be inexact (from this call on it is
    /// protected).
    pub fn absorb(&mut self, preference: &Preference) -> bool {
        let novel = self.fingerprints.insert(fingerprint(preference));
        if novel {
            if self.unions.len() < preference.arity() {
                self.unions
                    .resize_with(preference.arity(), RelationUnion::new);
            }
            for (attr, rel) in preference.relations() {
                self.unions[attr.index()].absorb(rel);
            }
            self.has_empty_member |= preference.is_empty();
            self.members.push(preference.compile());
        }
        novel
    }

    /// Whether some member holds no preference tuple at all. Such a member
    /// places *every* distinct value vector on its frontier, so no object
    /// can ever be evicted while it is in the universe — callers use this
    /// to skip sweep work that cannot evict anything.
    pub fn has_empty_member(&self) -> bool {
        self.has_empty_member
    }

    /// Whether `a` dominates `b` under the *permissive* union reading: on
    /// every attribute where the values differ, some member prefers `a`'s
    /// value (ignoring disagreeing members), strictly on at least one.
    ///
    /// This is a **necessary** condition for `a` to dominate `b` under any
    /// member preference — every tuple a member uses is in the union — but
    /// not sufficient: the witnessing tuples may come from different
    /// members, and a disagreeing member may hold the reverse tuple. It is
    /// the cheap pre-filter that narrows candidate dominator pairs before
    /// the per-member checks.
    pub fn union_dominates(&self, a: &Object, b: &Object) -> bool {
        let arity = a.arity().min(b.arity());
        let mut strict = false;
        for attr in 0..arity {
            let attr_id = AttrId::from(attr);
            let (av, bv) = (a.value(attr_id), b.value(attr_id));
            if av == bv {
                continue;
            }
            match self.unions.get(attr) {
                Some(union) if union.contains(av, bv) => strict = true,
                // No member has ever preferred `av` to `bv` on this
                // attribute: no member preference can dominate across it.
                _ => return false,
            }
        }
        strict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::ObjectId;

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn a(i: u32) -> AttrId {
        AttrId::new(i)
    }

    fn obj(id: u64, vals: &[u32]) -> Object {
        Object::new(ObjectId::new(id), vals.iter().map(|&x| v(x)).collect())
    }

    #[test]
    fn union_holds_conflicting_directions() {
        let mut union = RelationUnion::new();
        assert!(union.insert(v(0), v(1)));
        assert!(union.insert(v(1), v(0)), "unions are not partial orders");
        assert!(!union.insert(v(0), v(1)), "duplicate edges are not counted");
        assert_eq!(union.len(), 2);
        assert!(union.contains(v(0), v(1)));
        assert!(union.contains(v(1), v(0)));
        assert!(!union.contains(v(0), v(2)));
    }

    #[test]
    fn union_grows_past_a_word_boundary() {
        let mut union = RelationUnion::new();
        for i in 0..70 {
            assert!(union.insert(v(i), v(i + 1)));
        }
        assert_eq!(union.len(), 70);
        for i in 0..70 {
            assert!(union.contains(v(i), v(i + 1)), "edge {i} lost in re-layout");
            assert!(!union.contains(v(i + 1), v(i)));
        }
        // Non-adjacent pairs were never inserted (no closure is taken).
        assert!(!union.contains(v(0), v(69)));
    }

    #[test]
    fn absorb_deduplicates_members_but_unions_tuples() {
        let mut p1 = Preference::new(2);
        p1.prefer(a(0), v(0), v(1));
        let mut p2 = Preference::new(2);
        p2.prefer(a(1), v(2), v(3));
        let mut universe = PreferenceUniverse::new();
        assert!(universe.absorb(&p1), "first preference is novel");
        assert!(!universe.absorb(&p1), "re-absorbing is not novel");
        assert_eq!(universe.len(), 1, "identical preferences deduplicate");
        assert!(universe.contains(&p1));
        assert!(universe.covers(&p1));
        assert!(!universe.contains(&p2));
        assert!(!universe.covers(&p2));
        assert!(universe.absorb(&p2));
        assert_eq!(universe.len(), 2);
        assert_eq!(universe.union_len(), 2);
        assert!(universe.covers(&p2));
        assert!(!universe.has_empty_member());
    }

    #[test]
    fn weaker_never_seen_preferences_are_covered_but_still_novel() {
        // Universe member: 0≻1 and 0≻2. A never-seen subset {0≻1} is fully
        // inside the union, yet its skyline was never protected by any
        // sweep — novelty must be membership, not tuple coverage.
        let mut strong = Preference::new(1);
        strong.prefer(a(0), v(0), v(1));
        strong.prefer(a(0), v(0), v(2));
        let mut weak = Preference::new(1);
        weak.prefer(a(0), v(0), v(1));
        let mut universe = PreferenceUniverse::new();
        universe.absorb(&strong);
        assert!(universe.covers(&weak), "subset preference is covered");
        assert!(!universe.contains(&weak));
        assert!(universe.absorb(&weak), "covered but never seen => novel");
        assert!(!universe.absorb(&weak), "now a member");
    }

    #[test]
    fn empty_preference_is_covered_novel_once_and_blocks_eviction() {
        let empty = Preference::new(3);
        let mut universe = PreferenceUniverse::new();
        assert!(universe.covers(&empty));
        assert!(!universe.has_empty_member());
        assert!(
            universe.absorb(&empty),
            "an unseen empty preference is novel: its frontier is everything"
        );
        assert!(universe.has_empty_member());
        assert!(!universe.absorb(&empty), "second observation is not");
        assert_eq!(universe.len(), 1, "the empty member still gates eviction");
    }

    #[test]
    fn union_dominance_is_necessary_for_member_dominance() {
        // Member A: attr0 0≻1; member B: attr1 2≻3. The union mixes them.
        let mut pa = Preference::new(2);
        pa.prefer(a(0), v(0), v(1));
        let mut pb = Preference::new(2);
        pb.prefer(a(1), v(2), v(3));
        let mut universe = PreferenceUniverse::new();
        universe.absorb(&pa);
        universe.absorb(&pb);
        let strong = obj(0, &[0, 2]);
        let weak = obj(1, &[1, 3]);
        // Permissively dominated (tuples exist, albeit from different
        // members)...
        assert!(universe.union_dominates(&strong, &weak));
        // ...yet no single member dominates: the pre-filter is necessary,
        // not sufficient, and the per-member check must stay authoritative.
        assert!(universe
            .members()
            .iter()
            .all(|m| !m.dominates(&strong, &weak)));
        // A pair with no union edge on a differing attribute fails fast.
        assert!(!universe.union_dominates(&obj(2, &[0, 9]), &obj(3, &[1, 8])));
    }

    #[test]
    fn union_dominance_requires_a_strict_attribute() {
        let mut p = Preference::new(2);
        p.prefer(a(0), v(0), v(1));
        let mut universe = PreferenceUniverse::new();
        universe.absorb(&p);
        let x = obj(0, &[5, 7]);
        assert!(
            !universe.union_dominates(&x, &obj(1, &[5, 7])),
            "identical objects never dominate"
        );
        assert!(universe.union_dominates(&obj(2, &[0, 7]), &obj(3, &[1, 7])));
    }
}
