//! Hasse diagrams (transitive reductions), maximal values and value weights.
//!
//! The weighted similarity measures of Section 5 assign each value `v` the
//! weight `1 / (min_{s ∈ Sᵈ_U} D(s, v) + 1)` where `Sᵈ_U` is the set of
//! maximal values of the partial order (Def. 5.3) and `D(s, v)` is the
//! shortest-path distance from `s` to `v` in the Hasse diagram. Example 5.4
//! of the paper measures these distances on the Hasse diagram rather than on
//! the transitive closure, which is why the reduction is materialised here.

use std::collections::{HashMap, HashSet, VecDeque};

use pm_model::ValueId;

use crate::relation::Relation;

/// The transitive reduction of a [`Relation`], with the derived quantities
/// used by the weighted similarity measures.
#[derive(Debug, Clone, Default)]
pub struct HasseDiagram {
    /// Direct-cover edges: `edges[x]` = values covered by `x`.
    edges: HashMap<ValueId, HashSet<ValueId>>,
    /// Maximal values `Sᵈ_U` (no value preferred over them).
    maximal: HashSet<ValueId>,
    /// Minimum distance from any maximal value, per value.
    distance: HashMap<ValueId, u32>,
}

impl HasseDiagram {
    /// Builds the Hasse diagram of `relation`.
    pub fn of(relation: &Relation) -> Self {
        let values = relation.values();
        let mut edges: HashMap<ValueId, HashSet<ValueId>> = HashMap::new();
        for (x, y) in relation.pairs() {
            // (x, y) is a cover edge iff there is no z with x ≻ z ≻ y.
            let is_cover = !relation
                .successors(x)
                .any(|z| z != y && relation.prefers(z, y));
            if is_cover {
                edges.entry(x).or_default().insert(y);
            }
        }
        let maximal: HashSet<ValueId> = values
            .iter()
            .copied()
            .filter(|&x| relation.predecessors(x).next().is_none())
            .collect();
        let distance = Self::multi_source_bfs(&edges, &maximal);
        Self {
            edges,
            maximal,
            distance,
        }
    }

    fn multi_source_bfs(
        edges: &HashMap<ValueId, HashSet<ValueId>>,
        sources: &HashSet<ValueId>,
    ) -> HashMap<ValueId, u32> {
        let mut dist: HashMap<ValueId, u32> = HashMap::new();
        let mut queue: VecDeque<ValueId> = VecDeque::new();
        for &s in sources {
            dist.insert(s, 0);
            queue.push_back(s);
        }
        while let Some(x) = queue.pop_front() {
            let dx = dist[&x];
            if let Some(succ) = edges.get(&x) {
                for &y in succ {
                    if let std::collections::hash_map::Entry::Vacant(slot) = dist.entry(y) {
                        slot.insert(dx + 1);
                        queue.push_back(y);
                    }
                }
            }
        }
        dist
    }

    /// The maximal values `Sᵈ_U` of the underlying relation (Def. 5.3).
    pub fn maximal_values(&self) -> &HashSet<ValueId> {
        &self.maximal
    }

    /// The cover ("Hasse") edges of the reduction.
    pub fn cover_edges(&self) -> impl Iterator<Item = (ValueId, ValueId)> + '_ {
        self.edges
            .iter()
            .flat_map(|(&x, ys)| ys.iter().map(move |&y| (x, y)))
    }

    /// Number of cover edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(HashSet::len).sum()
    }

    /// Minimum shortest-path distance from any maximal value to `v`
    /// (`min_{s ∈ Sᵈ_U} D(s, v)`).
    ///
    /// Maximal values have distance 0. Values not mentioned by the relation
    /// (or unreachable, which cannot happen in a finite strict partial
    /// order) return `None`.
    pub fn distance_from_maximal(&self, v: ValueId) -> Option<u32> {
        self.distance.get(&v).copied()
    }

    /// The weight of value `v`: `1 / (distance + 1)` (Eq. 4).
    ///
    /// Values unknown to the relation get weight 1, matching the convention
    /// that an unconstrained value is trivially maximal.
    pub fn weight(&self, v: ValueId) -> f64 {
        match self.distance_from_maximal(v) {
            Some(d) => 1.0 / (f64::from(d) + 1.0),
            None => 1.0,
        }
    }
}

/// Convenience: build the Hasse diagram and return it together with the
/// relation's value weights, keyed by value.
pub fn value_weights(relation: &Relation) -> HashMap<ValueId, f64> {
    let hasse = HasseDiagram::of(relation);
    relation
        .values()
        .into_iter()
        .map(|v| (v, hasse.weight(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    #[test]
    fn chain_reduction_drops_transitive_edges() {
        let r = Relation::from_pairs([(v(0), v(1)), (v(1), v(2))]).unwrap();
        let h = HasseDiagram::of(&r);
        let edges: HashSet<_> = h.cover_edges().collect();
        assert_eq!(edges, [(v(0), v(1)), (v(1), v(2))].into_iter().collect());
        assert_eq!(h.edge_count(), 2);
        assert_eq!(h.maximal_values(), &[v(0)].into_iter().collect());
        assert_eq!(h.distance_from_maximal(v(0)), Some(0));
        assert_eq!(h.distance_from_maximal(v(1)), Some(1));
        assert_eq!(h.distance_from_maximal(v(2)), Some(2));
    }

    #[test]
    fn diamond_has_two_paths_but_no_shortcut_edge() {
        let r =
            Relation::from_pairs([(v(0), v(1)), (v(0), v(2)), (v(1), v(3)), (v(2), v(3))]).unwrap();
        let h = HasseDiagram::of(&r);
        assert_eq!(
            h.edge_count(),
            4,
            "the closure edge (0,3) must be reduced away"
        );
        assert_eq!(h.distance_from_maximal(v(3)), Some(2));
    }

    #[test]
    fn paper_example_5_4_u1_brand_weights() {
        // U1 on brand: Apple ≻ Lenovo ≻ Samsung, Apple ≻ Samsung,
        // Toshiba ≻ Samsung. Maximal = {Apple, Toshiba}.
        // Weights: Apple 1, Lenovo 1/2, Samsung 1/2, Toshiba 1.
        let (apple, lenovo, samsung, toshiba) = (v(0), v(1), v(2), v(3));
        let r =
            Relation::from_pairs([(apple, lenovo), (lenovo, samsung), (toshiba, samsung)]).unwrap();
        assert!(r.prefers(apple, samsung), "closure");
        let h = HasseDiagram::of(&r);
        assert_eq!(
            h.maximal_values(),
            &[apple, toshiba].into_iter().collect::<HashSet<_>>()
        );
        assert_eq!(h.weight(apple), 1.0);
        assert_eq!(h.weight(toshiba), 1.0);
        assert_eq!(h.weight(lenovo), 0.5);
        assert_eq!(h.weight(samsung), 0.5);
    }

    #[test]
    fn paper_example_5_4_u2_brand_weights() {
        // U2 on brand: Samsung ≻ Lenovo ≻ {Apple, Toshiba}.
        // Weights: Samsung 1, Lenovo 1/2, Apple 1/3, Toshiba 1/3.
        let (apple, lenovo, samsung, toshiba) = (v(0), v(1), v(2), v(3));
        let r =
            Relation::from_pairs([(samsung, lenovo), (lenovo, apple), (lenovo, toshiba)]).unwrap();
        let h = HasseDiagram::of(&r);
        assert_eq!(
            h.maximal_values(),
            &[samsung].into_iter().collect::<HashSet<_>>()
        );
        assert!((h.weight(apple) - 1.0 / 3.0).abs() < 1e-12);
        assert!((h.weight(toshiba) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.weight(lenovo), 0.5);
        assert_eq!(h.weight(samsung), 1.0);
    }

    #[test]
    fn empty_relation_has_no_structure() {
        let r = Relation::new();
        let h = HasseDiagram::of(&r);
        assert_eq!(h.edge_count(), 0);
        assert!(h.maximal_values().is_empty());
        assert_eq!(h.distance_from_maximal(v(0)), None);
        assert_eq!(h.weight(v(0)), 1.0);
    }

    #[test]
    fn value_weights_covers_all_mentioned_values() {
        let r = Relation::from_pairs([(v(0), v(1)), (v(0), v(2))]).unwrap();
        let w = value_weights(&r);
        assert_eq!(w.len(), 3);
        assert_eq!(w[&v(0)], 1.0);
        assert_eq!(w[&v(1)], 0.5);
        assert_eq!(w[&v(2)], 0.5);
    }

    #[test]
    fn incomparable_values_are_all_maximal() {
        let mut r = Relation::new();
        r.insert(v(0), v(1)).unwrap();
        r.insert(v(2), v(3)).unwrap();
        let h = HasseDiagram::of(&r);
        assert_eq!(
            h.maximal_values(),
            &[v(0), v(2)].into_iter().collect::<HashSet<_>>()
        );
    }
}
