//! Strict partial orders over one attribute's value domain.
//!
//! A [`Relation`] materialises the *transitive closure* of a preference
//! relation `≻ᵈ_c` (Def. 3.1): the set of preference tuples `(x, y)`
//! meaning "x is preferred to y". Storing the closure makes `prefers(x, y)`
//! O(1) and makes intersection of relations (common preference relations,
//! Def. 4.1) a straightforward filter. This is the *mutable, build-time*
//! representation; hot paths compile it to a
//! [`CompiledRelation`](crate::CompiledRelation) bit matrix.

use std::collections::{HashMap, HashSet};
use std::fmt;

use pm_model::ValueId;

/// Errors raised when a pair cannot be added to a strict partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelationError {
    /// `(x, x)` pairs are forbidden (irreflexivity).
    Reflexive(ValueId),
    /// Adding the pair would make the relation cyclic / symmetric: the
    /// reverse preference is already implied.
    AsymmetryViolation(ValueId, ValueId),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::Reflexive(v) => {
                write!(f, "reflexive preference tuple ({v}, {v}) is not allowed")
            }
            RelationError::AsymmetryViolation(x, y) => write!(
                f,
                "adding ({x}, {y}) would violate asymmetry: ({y}, {x}) already holds"
            ),
        }
    }
}

impl std::error::Error for RelationError {}

/// A strict partial order over [`ValueId`]s, stored as its transitive closure.
///
/// The closure is held only as the successor/predecessor adjacency maps; the
/// tuple `(x, y)` is present iff `y ∈ successors[x]`, so no separate pair
/// set is materialised (it would triple-store every tuple).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    /// `successors[x]` = all `y` with `x ≻ y`. Entries are never empty.
    successors: HashMap<ValueId, HashSet<ValueId>>,
    /// `predecessors[y]` = all `x` with `x ≻ y`. Entries are never empty.
    predecessors: HashMap<ValueId, HashSet<ValueId>>,
    /// Number of preference tuples in the closure.
    len: usize,
}

impl Relation {
    /// Creates an empty relation (every pair of values incomparable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a relation from explicit preference tuples, computing the
    /// transitive closure as it goes.
    ///
    /// Returns an error if the tuples are reflexive or jointly cyclic.
    pub fn from_pairs<I>(pairs: I) -> Result<Self, RelationError>
    where
        I: IntoIterator<Item = (ValueId, ValueId)>,
    {
        let mut rel = Self::new();
        for (x, y) in pairs {
            rel.insert(x, y)?;
        }
        Ok(rel)
    }

    /// Builds a relation from pairs that are already known to form a
    /// transitively closed strict partial order (e.g. the intersection of
    /// two closed relations). No closure computation is performed.
    ///
    /// This is an internal fast path; debug builds verify the input.
    pub(crate) fn from_closed_pairs(pairs: HashSet<(ValueId, ValueId)>) -> Self {
        let mut successors: HashMap<ValueId, HashSet<ValueId>> = HashMap::new();
        let mut predecessors: HashMap<ValueId, HashSet<ValueId>> = HashMap::new();
        let len = pairs.len();
        for (x, y) in pairs {
            successors.entry(x).or_default().insert(y);
            predecessors.entry(y).or_default().insert(x);
        }
        let rel = Self {
            successors,
            predecessors,
            len,
        };
        debug_assert!(rel.validate().is_ok());
        rel
    }

    /// Builds a relation by 2-D dominance over per-value statistics.
    ///
    /// This is the derivation rule the paper uses to simulate user
    /// preferences from rating data (Sec. 8.1): value `a` is preferred to
    /// value `b` iff `(Ra > Rb ∧ Ma ≥ Mb) ∨ (Ra ≥ Rb ∧ Ma > Mb)`, i.e. the
    /// statistics vector of `a` Pareto-dominates that of `b`. Such a
    /// dominance relation is automatically a strict partial order.
    pub fn from_dominance_stats(stats: &HashMap<ValueId, (f64, f64)>) -> Self {
        let mut pairs = HashSet::new();
        let entries: Vec<(ValueId, (f64, f64))> = stats.iter().map(|(&v, &s)| (v, s)).collect();
        for (i, &(a, (ra, ma))) in entries.iter().enumerate() {
            for &(b, (rb, mb)) in entries.iter().skip(i + 1) {
                if (ra > rb && ma >= mb) || (ra >= rb && ma > mb) {
                    pairs.insert((a, b));
                } else if (rb > ra && mb >= ma) || (rb >= ra && mb > ma) {
                    pairs.insert((b, a));
                }
            }
        }
        // 2-D dominance is transitive, so the pair set is already closed.
        Self::from_closed_pairs(pairs)
    }

    /// Whether `x ≻ y` holds.
    #[inline]
    pub fn prefers(&self, x: ValueId, y: ValueId) -> bool {
        self.successors.get(&x).is_some_and(|s| s.contains(&y))
    }

    /// Whether the preference tuple `(x, y)` or its reverse is present.
    #[inline]
    pub fn comparable(&self, x: ValueId, y: ValueId) -> bool {
        self.prefers(x, y) || self.prefers(y, x)
    }

    /// Number of preference tuples in the transitive closure (`|≻ᵈ|`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation holds no preference tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap bytes of the hash-map closure form. Each tuple
    /// lives in both adjacency maps; hash-table overhead is estimated at
    /// roughly 2x payload.
    pub fn approx_bytes(&self) -> usize {
        let entries = self.successors.len() + self.predecessors.len();
        self.len * 2 * 2 * std::mem::size_of::<ValueId>()
            + entries * 2 * std::mem::size_of::<(ValueId, HashSet<ValueId>)>()
    }

    /// Iterates over all preference tuples of the closure.
    pub fn pairs(&self) -> impl Iterator<Item = (ValueId, ValueId)> + '_ {
        self.successors
            .iter()
            .flat_map(|(&x, ys)| ys.iter().map(move |&y| (x, y)))
    }

    /// The set of values mentioned by at least one preference tuple.
    pub fn values(&self) -> HashSet<ValueId> {
        self.successors
            .keys()
            .chain(self.predecessors.keys())
            .copied()
            .collect()
    }

    /// All values preferred *by* `x` (its successors in the closure).
    pub fn successors(&self, x: ValueId) -> impl Iterator<Item = ValueId> + '_ {
        self.successors.get(&x).into_iter().flatten().copied()
    }

    /// All values preferred *over* `y` (its predecessors in the closure).
    pub fn predecessors(&self, y: ValueId) -> impl Iterator<Item = ValueId> + '_ {
        self.predecessors.get(&y).into_iter().flatten().copied()
    }

    /// Inserts the preference tuple `x ≻ y`, maintaining the transitive
    /// closure. Returns `Ok(true)` if any new tuple was added, `Ok(false)`
    /// if the tuple was already implied.
    pub fn insert(&mut self, x: ValueId, y: ValueId) -> Result<bool, RelationError> {
        if x == y {
            return Err(RelationError::Reflexive(x));
        }
        if self.prefers(y, x) {
            return Err(RelationError::AsymmetryViolation(x, y));
        }
        if self.prefers(x, y) {
            return Ok(false);
        }
        // Everything at or above x must now prefer everything at or below y.
        let mut lefts: Vec<ValueId> = vec![x];
        lefts.extend(self.predecessors(x));
        let mut rights: Vec<ValueId> = vec![y];
        rights.extend(self.successors(y));
        for &a in &lefts {
            for &b in &rights {
                self.add_closed_pair(a, b);
            }
        }
        Ok(true)
    }

    /// Checks whether inserting `x ≻ y` would keep the relation a strict
    /// partial order, without modifying it.
    pub fn can_insert(&self, x: ValueId, y: ValueId) -> bool {
        x != y && !self.prefers(y, x)
    }

    #[inline]
    fn add_closed_pair(&mut self, x: ValueId, y: ValueId) {
        if self.successors.entry(x).or_default().insert(y) {
            self.predecessors.entry(y).or_default().insert(x);
            self.len += 1;
        }
    }

    /// The common preference relation `≻ᵈ_U = ⋂ ≻ᵈ_c` (Def. 4.1).
    ///
    /// The intersection of strict partial orders is a strict partial order
    /// (Theorem 4.2), so no closure recomputation is needed.
    pub fn intersection(&self, other: &Relation) -> Relation {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let pairs: HashSet<(ValueId, ValueId)> = small
            .pairs()
            .filter(|&(x, y)| large.prefers(x, y))
            .collect();
        Relation::from_closed_pairs(pairs)
    }

    /// Intersects many relations at once. Returns the empty relation if the
    /// iterator is empty.
    pub fn intersection_of<'a, I>(relations: I) -> Relation
    where
        I: IntoIterator<Item = &'a Relation>,
    {
        let mut iter = relations.into_iter();
        let Some(first) = iter.next() else {
            return Relation::new();
        };
        let mut acc = first.clone();
        for rel in iter {
            if acc.is_empty() {
                break;
            }
            acc = acc.intersection(rel);
        }
        acc
    }

    /// Size of the intersection with `other` (`simᵈ_i`, Eq. 2) without
    /// materialising it.
    pub fn intersection_size(&self, other: &Relation) -> usize {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.pairs().filter(|&(x, y)| large.prefers(x, y)).count()
    }

    /// Size of the union with `other` (denominator of the Jaccard measure,
    /// Eq. 3).
    pub fn union_size(&self, other: &Relation) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Iterates over the tuples present in `self` but not in `other`
    /// (`≻ᵈ_U1 − ≻ᵈ_U2` in Eq. 5).
    pub fn difference<'a>(
        &'a self,
        other: &'a Relation,
    ) -> impl Iterator<Item = (ValueId, ValueId)> + 'a {
        self.pairs().filter(move |&(x, y)| !other.prefers(x, y))
    }

    /// Number of tuples the closure would gain if `x ≻ y` were inserted.
    /// Returns `None` when the insertion is invalid.
    pub fn closure_gain(&self, x: ValueId, y: ValueId) -> Option<usize> {
        if !self.can_insert(x, y) {
            return None;
        }
        if self.prefers(x, y) {
            return Some(0);
        }
        let mut lefts: Vec<ValueId> = vec![x];
        lefts.extend(self.predecessors(x));
        let mut rights: Vec<ValueId> = vec![y];
        rights.extend(self.successors(y));
        let mut gain = 0;
        for &a in &lefts {
            for &b in &rights {
                if !self.prefers(a, b) {
                    gain += 1;
                }
            }
        }
        Some(gain)
    }

    /// Verifies irreflexivity, asymmetry and transitivity of the stored pair
    /// set. Intended for tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        for (x, y) in self.pairs() {
            if x == y {
                return Err(format!("reflexive pair ({x}, {y})"));
            }
            if self.prefers(y, x) {
                return Err(format!("asymmetry violated for ({x}, {y})"));
            }
        }
        for (x, y) in self.pairs() {
            if let Some(succ) = self.successors.get(&y) {
                for &z in succ {
                    if !self.prefers(x, z) {
                        return Err(format!("transitivity violated: ({x},{y}),({y},{z})"));
                    }
                }
            }
        }
        Ok(())
    }
}

impl FromIterator<(ValueId, ValueId)> for Relation {
    /// Builds a relation from pairs, panicking on invalid input.
    ///
    /// Prefer [`Relation::from_pairs`] when the input is untrusted.
    fn from_iter<T: IntoIterator<Item = (ValueId, ValueId)>>(iter: T) -> Self {
        Relation::from_pairs(iter).expect("pairs must form a strict partial order")
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut pairs: Vec<(ValueId, ValueId)> = self.pairs().collect();
        pairs.sort();
        let rendered: Vec<String> = pairs.iter().map(|(x, y)| format!("({x}≻{y})")).collect();
        write!(f, "{{{}}}", rendered.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    #[test]
    fn insert_maintains_transitive_closure() {
        let mut r = Relation::new();
        assert!(r.insert(v(0), v(1)).unwrap());
        assert!(r.insert(v(1), v(2)).unwrap());
        assert!(r.prefers(v(0), v(2)), "closure must contain (0,2)");
        assert_eq!(r.len(), 3);
        r.validate().unwrap();
    }

    #[test]
    fn insert_rejects_reflexive_and_cyclic() {
        let mut r = Relation::new();
        assert_eq!(r.insert(v(3), v(3)), Err(RelationError::Reflexive(v(3))));
        r.insert(v(0), v(1)).unwrap();
        r.insert(v(1), v(2)).unwrap();
        assert_eq!(
            r.insert(v(2), v(0)),
            Err(RelationError::AsymmetryViolation(v(2), v(0)))
        );
        assert!(r.can_insert(v(0), v(5)));
        assert!(!r.can_insert(v(2), v(0)));
    }

    #[test]
    fn duplicate_insert_reports_no_change() {
        let mut r = Relation::new();
        assert!(r.insert(v(0), v(1)).unwrap());
        assert!(!r.insert(v(0), v(1)).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn diamond_closure_is_complete() {
        // 0 ≻ 1, 0 ≻ 2, 1 ≻ 3, 2 ≻ 3  ⇒ closure adds 0 ≻ 3.
        let r =
            Relation::from_pairs([(v(0), v(1)), (v(0), v(2)), (v(1), v(3)), (v(2), v(3))]).unwrap();
        assert!(r.prefers(v(0), v(3)));
        assert_eq!(r.len(), 5);
        r.validate().unwrap();
    }

    #[test]
    fn chain_insertion_in_any_order_gives_same_closure() {
        let forward = Relation::from_pairs([(v(0), v(1)), (v(1), v(2)), (v(2), v(3))]).unwrap();
        let backward = Relation::from_pairs([(v(2), v(3)), (v(1), v(2)), (v(0), v(1))]).unwrap();
        let f: HashSet<_> = forward.pairs().collect();
        let b: HashSet<_> = backward.pairs().collect();
        assert_eq!(f, b);
        assert_eq!(forward.len(), 6);
    }

    #[test]
    fn intersection_matches_paper_cpu_example() {
        // Example 4.4: ≻CPU_c1 and ≻CPU_c2 intersect to
        // {(dual,single),(triple,single),(quad,single)}.
        // Encode: single=0, dual=1, triple=2, quad=3.
        let c1 = Relation::from_pairs([
            (v(1), v(0)),
            (v(1), v(3)),
            (v(1), v(2)),
            (v(2), v(0)),
            (v(3), v(0)),
        ])
        .unwrap();
        let c2 = Relation::from_pairs([
            (v(1), v(0)),
            (v(2), v(0)),
            (v(3), v(0)),
            (v(2), v(1)),
            (v(3), v(1)),
            (v(3), v(2)),
        ])
        .unwrap();
        let common = c1.intersection(&c2);
        let expected: HashSet<(ValueId, ValueId)> = [(v(1), v(0)), (v(2), v(0)), (v(3), v(0))]
            .into_iter()
            .collect();
        assert_eq!(common.pairs().collect::<HashSet<_>>(), expected);
        assert_eq!(c1.intersection_size(&c2), 3);
        assert_eq!(c1.union_size(&c2), 8);
        common.validate().unwrap();
    }

    #[test]
    fn intersection_of_many_relations() {
        let a = Relation::from_pairs([(v(0), v(1)), (v(1), v(2))]).unwrap();
        let b = Relation::from_pairs([(v(0), v(1)), (v(0), v(2))]).unwrap();
        let c = Relation::from_pairs([(v(0), v(1))]).unwrap();
        let common = Relation::intersection_of([&a, &b, &c]);
        assert_eq!(common.len(), 1);
        assert!(common.prefers(v(0), v(1)));
        assert!(Relation::intersection_of(std::iter::empty::<&Relation>()).is_empty());
    }

    #[test]
    fn difference_lists_unshared_pairs() {
        let a = Relation::from_pairs([(v(0), v(1)), (v(2), v(3))]).unwrap();
        let b = Relation::from_pairs([(v(0), v(1))]).unwrap();
        let diff: HashSet<_> = a.difference(&b).collect();
        assert_eq!(diff, [(v(2), v(3))].into_iter().collect());
        assert_eq!(b.difference(&a).count(), 0);
    }

    #[test]
    fn from_dominance_stats_builds_partial_order() {
        // value 0: (4.5, 10), value 1: (4.0, 5), value 2: (4.0, 10), value 3: (5.0, 2)
        let stats: HashMap<ValueId, (f64, f64)> = [
            (v(0), (4.5, 10.0)),
            (v(1), (4.0, 5.0)),
            (v(2), (4.0, 10.0)),
            (v(3), (5.0, 2.0)),
        ]
        .into_iter()
        .collect();
        let r = Relation::from_dominance_stats(&stats);
        assert!(r.prefers(v(0), v(1)));
        assert!(r.prefers(v(0), v(2)));
        assert!(r.prefers(v(2), v(1)));
        // 3 has higher rating but lower count than 0 ⇒ incomparable.
        assert!(!r.comparable(v(0), v(3)));
        r.validate().unwrap();
    }

    #[test]
    fn closure_gain_counts_new_pairs() {
        let r = Relation::from_pairs([(v(0), v(1)), (v(2), v(3))]).unwrap();
        // Inserting 1 ≻ 2 links the two chains: adds (1,2),(1,3),(0,2),(0,3).
        assert_eq!(r.closure_gain(v(1), v(2)), Some(4));
        assert_eq!(r.closure_gain(v(0), v(1)), Some(0));
        assert_eq!(r.closure_gain(v(1), v(0)), None);
    }

    #[test]
    fn values_and_adjacency_accessors() {
        let r = Relation::from_pairs([(v(0), v(1)), (v(1), v(2))]).unwrap();
        assert_eq!(r.values().len(), 3);
        let succ: HashSet<_> = r.successors(v(0)).collect();
        assert_eq!(succ, [v(1), v(2)].into_iter().collect());
        let pred: HashSet<_> = r.predecessors(v(2)).collect();
        assert_eq!(pred, [v(0), v(1)].into_iter().collect());
        assert!(r.comparable(v(0), v(2)));
        assert!(!r.comparable(v(0), v(9)));
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let r = Relation::from_pairs([(v(1), v(2)), (v(0), v(1))]).unwrap();
        assert_eq!(r.to_string(), "{(v0≻v1), (v0≻v2), (v1≻v2)}");
    }
}
