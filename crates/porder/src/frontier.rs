//! Naive Pareto-frontier computation used as a test oracle.
//!
//! The incremental monitors in `pm-core` are validated against this
//! quadratic "compare everything with everything" implementation of
//! Def. 3.3 / Def. 7.1.

use pm_model::{Object, ObjectId};

use crate::preference::{Dominance, Preference};

/// Computes the Pareto frontier of `objects` under `preference` from
/// scratch: the ids of all objects not dominated by any other object.
///
/// Identical duplicates are all kept, matching Alg. 1 of the paper where an
/// object identical to a frontier member is inserted into the frontier.
pub fn naive_pareto_frontier(preference: &Preference, objects: &[Object]) -> Vec<ObjectId> {
    let mut frontier = Vec::new();
    'outer: for candidate in objects {
        for other in objects {
            if other.id() == candidate.id() {
                continue;
            }
            if preference.compare(other, candidate) == Dominance::Dominates {
                continue 'outer;
            }
        }
        frontier.push(candidate.id());
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::{AttrId, ValueId};

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn obj(id: u64, vals: &[u32]) -> Object {
        Object::new(ObjectId::new(id), vals.iter().map(|&x| v(x)).collect())
    }

    fn chain_pref() -> Preference {
        // One attribute with total order 0 ≻ 1 ≻ 2 ≻ 3.
        let mut p = Preference::new(1);
        p.prefer(AttrId::new(0), v(0), v(1));
        p.prefer(AttrId::new(0), v(1), v(2));
        p.prefer(AttrId::new(0), v(2), v(3));
        p
    }

    #[test]
    fn single_best_object_wins() {
        let p = chain_pref();
        let objects = vec![obj(0, &[3]), obj(1, &[1]), obj(2, &[0]), obj(3, &[2])];
        assert_eq!(naive_pareto_frontier(&p, &objects), vec![ObjectId::new(2)]);
    }

    #[test]
    fn identical_best_objects_are_all_kept() {
        let p = chain_pref();
        let objects = vec![obj(0, &[0]), obj(1, &[0]), obj(2, &[2])];
        let f = naive_pareto_frontier(&p, &objects);
        assert_eq!(f, vec![ObjectId::new(0), ObjectId::new(1)]);
    }

    #[test]
    fn empty_preference_keeps_everything() {
        let p = Preference::new(1);
        let objects = vec![obj(0, &[0]), obj(1, &[1]), obj(2, &[2])];
        assert_eq!(naive_pareto_frontier(&p, &objects).len(), 3);
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        let p = chain_pref();
        assert!(naive_pareto_frontier(&p, &[]).is_empty());
    }
}
