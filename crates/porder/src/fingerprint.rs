//! Preference fingerprints and the interner that deduplicates compiled
//! preferences across a large user population.
//!
//! The paper's whole premise (Sec. 4) is that real users *share*
//! preferences. A [`Fingerprint`] is a canonical, stable 128-bit hash of a
//! [`Preference`]'s normalised per-attribute tuple sets: two preferences
//! have equal fingerprints iff (modulo astronomically unlikely collisions,
//! which every consumer guards against with a full equality check) they are
//! the same preference. The [`PreferenceInterner`] buckets registered users
//! by fingerprint and hands out shared `Arc`s to one [`Preference`] and one
//! [`CompiledPreference`] per *distinct* preference, so memory and
//! compilation work scale with the number of distinct preferences rather
//! than the population size.
//!
//! The hash is hand-rolled (two independent FNV-1a-style 64-bit lanes over
//! a canonical `u64` stream) rather than `std`'s `DefaultHasher` because
//! fingerprints are persisted in WAL snapshots: the function must be stable
//! across processes, architectures, and toolchain versions.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::compiled::CompiledPreference;
use crate::preference::Preference;

/// A canonical, stable 128-bit fingerprint of a [`Preference`].
///
/// Equal preferences always produce equal fingerprints; the converse holds
/// up to hash collisions, so consumers that *merge* state keyed by
/// fingerprint must confirm with a full [`Preference`] equality check (the
/// [`PreferenceInterner`] does).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint([u64; 2]);

impl Fingerprint {
    /// The fingerprint as 16 little-endian bytes (for snapshot encoding).
    pub fn to_le_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.0[0].to_le_bytes());
        out[8..].copy_from_slice(&self.0[1].to_le_bytes());
        out
    }

    /// Rebuilds a fingerprint from [`Fingerprint::to_le_bytes`] output.
    pub fn from_le_bytes(bytes: [u8; 16]) -> Self {
        Fingerprint([
            u64::from_le_bytes(bytes[..8].try_into().unwrap()),
            u64::from_le_bytes(bytes[8..].try_into().unwrap()),
        ])
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({self})")
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const LANE_A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const LANE_B_OFFSET: u64 = 0x6c62_272e_07bb_0142;

/// Two independent FNV-1a lanes over a stream of `u64`s. Lane B perturbs
/// each word with a running position counter so the lanes do not merely
/// differ by a constant.
struct TwoLaneHasher {
    a: u64,
    b: u64,
    pos: u64,
}

impl TwoLaneHasher {
    fn new() -> Self {
        TwoLaneHasher {
            a: LANE_A_OFFSET,
            b: LANE_B_OFFSET,
            pos: 0,
        }
    }

    #[inline]
    fn write(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        self.pos = self.pos.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let perturbed = word ^ self.pos;
        for byte in perturbed.to_le_bytes() {
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(mut self) -> Fingerprint {
        // A final avalanche pass so short inputs still spread across all
        // 128 bits (splitmix64-style finalizer, a fixed published constant
        // set — stable by construction).
        for lane in [&mut self.a, &mut self.b] {
            let mut z = *lane;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *lane = z ^ (z >> 31);
        }
        Fingerprint([self.a, self.b])
    }
}

impl Preference {
    /// The canonical fingerprint of this preference.
    ///
    /// Covers the arity (trailing empty relations are semantically
    /// significant: [`Preference::compare`] treats differing values on an
    /// empty-relation attribute as incomparable) and, per attribute, the
    /// sorted tuple list of the transitive closure with a length prefix.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = TwoLaneHasher::new();
        h.write(self.arity() as u64);
        for (_, relation) in self.relations() {
            let mut pairs: Vec<(u32, u32)> =
                relation.pairs().map(|(x, y)| (x.raw(), y.raw())).collect();
            pairs.sort_unstable();
            h.write(pairs.len() as u64);
            for (x, y) in pairs {
                h.write((u64::from(x) << 32) | u64::from(y));
            }
        }
        h.finish()
    }
}

/// A shared handle to one interned preference.
///
/// Cloning is cheap (`Arc` bumps). The handle does **not** release its
/// interner slot on drop — the owner that called [`PreferenceInterner::intern`]
/// must pair it with [`PreferenceInterner::release`].
#[derive(Debug, Clone)]
pub struct Interned {
    /// Slot id inside the interner; pass back to [`PreferenceInterner::release`].
    pub id: u32,
    /// The canonical fingerprint.
    pub fingerprint: Fingerprint,
    /// The deduplicated preference.
    pub preference: Arc<Preference>,
    /// The deduplicated compiled form.
    pub compiled: Arc<CompiledPreference>,
}

#[derive(Debug, Clone)]
struct InternEntry {
    fingerprint: Fingerprint,
    preference: Arc<Preference>,
    compiled: Arc<CompiledPreference>,
    refs: usize,
}

/// Deduplicates preferences behind `Arc`s, keyed by [`Fingerprint`] with a
/// full equality check on collision. Reference-counted: [`PreferenceInterner::intern`]
/// acquires, [`PreferenceInterner::release`] releases; a slot whose count
/// reaches zero is recycled.
#[derive(Debug, Default, Clone)]
pub struct PreferenceInterner {
    entries: Vec<Option<InternEntry>>,
    free: Vec<u32>,
    by_fp: HashMap<Fingerprint, Vec<u32>>,
    total: usize,
}

impl PreferenceInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `preference`, compiling it only if no equal preference is
    /// already present, and bumps the slot's reference count.
    pub fn intern(&mut self, preference: &Preference) -> Interned {
        let fingerprint = preference.fingerprint();
        if let Some(ids) = self.by_fp.get(&fingerprint) {
            for &id in ids {
                let entry = self.entries[id as usize]
                    .as_mut()
                    .expect("by_fp points at a live slot");
                if entry.preference.as_ref() == preference {
                    entry.refs += 1;
                    self.total += 1;
                    return Interned {
                        id,
                        fingerprint,
                        preference: entry.preference.clone(),
                        compiled: entry.compiled.clone(),
                    };
                }
            }
        }
        let preference_arc = Arc::new(preference.clone());
        let compiled = Arc::new(preference.compile());
        let entry = InternEntry {
            fingerprint,
            preference: preference_arc.clone(),
            compiled: compiled.clone(),
            refs: 1,
        };
        let id = match self.free.pop() {
            Some(id) => {
                self.entries[id as usize] = Some(entry);
                id
            }
            None => {
                self.entries.push(Some(entry));
                (self.entries.len() - 1) as u32
            }
        };
        self.by_fp.entry(fingerprint).or_default().push(id);
        self.total += 1;
        Interned {
            id,
            fingerprint,
            preference: preference_arc,
            compiled,
        }
    }

    /// Releases one reference on slot `id`, recycling the slot when the
    /// count reaches zero.
    ///
    /// # Panics
    /// Panics if `id` is not a live slot (double release is a caller bug).
    pub fn release(&mut self, id: u32) {
        let slot = self.entries[id as usize]
            .as_mut()
            .expect("release of a dead interner slot");
        slot.refs -= 1;
        self.total -= 1;
        if slot.refs == 0 {
            let fingerprint = slot.fingerprint;
            self.entries[id as usize] = None;
            self.free.push(id);
            if let Some(ids) = self.by_fp.get_mut(&fingerprint) {
                ids.retain(|&other| other != id);
                if ids.is_empty() {
                    self.by_fp.remove(&fingerprint);
                }
            }
        }
    }

    /// Number of distinct live preferences.
    pub fn distinct(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Total live references (i.e. interned users).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether no preference is currently interned.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Approximate heap bytes held by the distinct preferences (build-time
    /// and compiled forms). Shared `Arc` copies cost nothing extra.
    pub fn approx_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .map(|e| e.preference.approx_bytes() + e.compiled.approx_bytes())
            .sum()
    }

    /// The preference held by live slot `id`, or `None` for a dead slot.
    pub fn get(&self, id: u32) -> Option<&Arc<Preference>> {
        self.entries
            .get(id as usize)
            .and_then(|slot| slot.as_ref())
            .map(|e| &e.preference)
    }

    /// Iterates over the distinct live entries as
    /// `(slot id, fingerprint, refcount, preference)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Fingerprint, usize, &Arc<Preference>)> + '_ {
        self.entries.iter().enumerate().filter_map(|(id, slot)| {
            slot.as_ref()
                .map(|e| (id as u32, e.fingerprint, e.refs, &e.preference))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::{AttrId, ValueId};

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn a(i: u32) -> AttrId {
        AttrId::new(i)
    }

    fn pref(arity: u32, rows: &[(u32, u32, u32)]) -> Preference {
        let mut p = Preference::new(arity as usize);
        for &(attr, x, y) in rows {
            p.prefer(a(attr), v(x), v(y));
        }
        p
    }

    #[test]
    fn equal_preferences_share_a_fingerprint() {
        // Same closure reached through different insertion orders.
        let p1 = pref(2, &[(0, 1, 2), (0, 2, 3), (1, 0, 1)]);
        let p2 = pref(2, &[(1, 0, 1), (0, 2, 3), (0, 1, 2)]);
        assert_eq!(p1, p2);
        assert_eq!(p1.fingerprint(), p2.fingerprint());
    }

    #[test]
    fn distinct_preferences_diverge() {
        let base = pref(2, &[(0, 1, 2)]);
        let variants = [
            pref(2, &[(0, 2, 1)]),            // flipped tuple
            pref(2, &[(1, 1, 2)]),            // other attribute
            pref(3, &[(0, 1, 2)]),            // extra (empty) trailing attribute
            pref(2, &[(0, 1, 2), (0, 1, 3)]), // extra tuple
            pref(2, &[]),                     // empty
        ];
        for other in &variants {
            assert_ne!(base.fingerprint(), other.fingerprint(), "{other:?}");
        }
    }

    #[test]
    fn arity_is_part_of_the_fingerprint() {
        // A trailing empty relation changes dominance semantics, so it must
        // change the fingerprint even though no tuples differ.
        let narrow = pref(1, &[(0, 1, 2)]);
        let wide = pref(2, &[(0, 1, 2)]);
        assert_ne!(narrow.fingerprint(), wide.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_across_runs() {
        // Pinned value: the hash feeds WAL snapshots, so it must never
        // change silently. If this assertion fails you have changed the
        // fingerprint function and must bump the snapshot version.
        let p = pref(2, &[(0, 1, 2), (0, 2, 3), (1, 4, 0)]);
        assert_eq!(p.fingerprint().to_string(), format!("{}", p.fingerprint()),);
        let bytes = p.fingerprint().to_le_bytes();
        assert_eq!(Fingerprint::from_le_bytes(bytes), p.fingerprint());
        assert_eq!(
            p.fingerprint().to_string(),
            "3f7dca05ce07a5bcde085fcf284997c1",
            "fingerprint function changed — bump the snapshot format version"
        );
    }

    #[test]
    fn interner_dedupes_and_refcounts() {
        let mut interner = PreferenceInterner::new();
        let p1 = pref(2, &[(0, 1, 2)]);
        let p2 = pref(2, &[(0, 1, 2)]);
        let q = pref(2, &[(0, 2, 1)]);

        let h1 = interner.intern(&p1);
        let h2 = interner.intern(&p2);
        let hq = interner.intern(&q);
        assert_eq!(h1.id, h2.id);
        assert!(Arc::ptr_eq(&h1.compiled, &h2.compiled));
        assert_ne!(h1.id, hq.id);
        assert_eq!(interner.distinct(), 2);
        assert_eq!(interner.total(), 3);

        interner.release(h1.id);
        assert_eq!(interner.distinct(), 2, "still one live ref on the slot");
        interner.release(h2.id);
        assert_eq!(interner.distinct(), 1, "slot recycled at refcount zero");
        assert_eq!(interner.total(), 1);

        // The freed slot is reused and a fresh intern of p1 recompiles.
        let h3 = interner.intern(&p1);
        assert_eq!(h3.id, h1.id, "free list recycles the slot id");
        assert_eq!(interner.distinct(), 2);
        interner.release(h3.id);
        interner.release(hq.id);
        assert!(interner.is_empty());
        assert_eq!(interner.approx_bytes(), 0);
    }

    #[test]
    fn approx_bytes_counts_distinct_not_total() {
        let mut interner = PreferenceInterner::new();
        let p = pref(2, &[(0, 1, 2), (1, 3, 4)]);
        let h1 = interner.intern(&p);
        let one = interner.approx_bytes();
        assert!(one > 0);
        let h2 = interner.intern(&p);
        assert_eq!(
            interner.approx_bytes(),
            one,
            "a second reference costs no extra bytes"
        );
        interner.release(h1.id);
        interner.release(h2.id);
    }
}
