//! Bitset-compiled partial orders: the immutable, cache-friendly form the
//! monitoring hot path runs on.
//!
//! [`Relation`] is the *build-time* representation: hash maps support
//! incremental transitive-closure insertion while preferences are collected.
//! Once a monitor is constructed, its preferences never change again, yet
//! every arriving object pays `prefers(x, y)` many times over. Compiling a
//! relation interns its values to dense indices and stores the transitive
//! closure as a bit matrix — one fixed-width bit-row per value — so that
//!
//! * `prefers(x, y)` is two array loads plus one shift-and-mask,
//! * intersection (the common preference relation of Def. 4.1) is a
//!   bitwise AND over the rows, and
//! * the similarity measures of Sec. 5 reduce to AND + popcount.
//!
//! [`CompiledPreference`] bundles one [`CompiledRelation`] per attribute and
//! carries the object-dominance test of Def. 3.2 ([`CompiledPreference::compare`],
//! [`CompiledPreference::dominates`], [`CompiledPreference::dominates_batch`]).

use std::collections::VecDeque;
use std::sync::Arc;

use pm_model::{AttrId, Object, ValueId};

use crate::preference::{Dominance, Preference};
use crate::relation::Relation;

/// Sentinel for "value not in this relation's universe".
const NONE: u32 = u32::MAX;

/// Universes at least this large are candidates for the sparse row
/// representation (below that, the dense matrix is at most a few KiB and
/// simpler is faster).
const SPARSE_MIN_UNIVERSE: usize = 128;

/// Sparse is chosen when non-empty rows make up at most `1/SPARSE_ROW_DIV`
/// of the universe — i.e. it guarantees at least a ~4x row-storage saving.
const SPARSE_ROW_DIV: usize = 4;

/// Row storage of a [`CompiledRelation`]: either the full dense matrix, or
/// — when the universe is large and most rows are empty (a single user's
/// preference compiled over a big shared value domain) — only the non-empty
/// rows, sorted by row index. The sparse form drops the O(|universe|²) bit
/// cost of a singleton to O(mentioned · |universe|) bits.
#[derive(Debug, Clone)]
enum Rows {
    /// `universe.len() * words_per_row` words, row-major.
    Dense(Vec<u64>),
    /// Non-empty rows only, ascending by row index, plus one shared
    /// all-zero row handed out for absent indices.
    Sparse {
        rows: Vec<(u32, Box<[u64]>)>,
        zeros: Box<[u64]>,
    },
}

/// An immutable strict partial order compiled to a bit matrix.
///
/// Row `i` holds the successor set of the `i`-th interned value: bit `j` of
/// row `i` is set iff `universe[i] ≻ universe[j]` in the source relation's
/// transitive closure. Values outside the universe are incomparable to
/// everything, matching [`Relation::prefers`] on unmentioned values.
///
/// Rows are stored dense (one fixed-width bit-row per value) or sparse
/// (non-empty rows only — see the internal `Rows` enum); the representation is an internal
/// detail chosen at compile time, and two relations with the same universe
/// and tuple set compare equal regardless of representation.
#[derive(Debug, Clone)]
pub struct CompiledRelation {
    /// `ValueId.raw() → dense index`, or [`NONE`]; indexed directly by raw
    /// id. Shared (`Arc`) so that [`CompiledRelation::intersect`] — called
    /// once per attribute per cluster merge — never re-copies the table.
    index_of: Arc<[u32]>,
    /// Dense index → interned value, ascending by raw id. Shared like
    /// `index_of`.
    universe: Arc<[ValueId]>,
    /// Width of each bit-row in 64-bit words: `ceil(universe.len() / 64)`.
    words_per_row: usize,
    /// Row storage (dense matrix or non-empty rows only).
    rows: Rows,
    /// Number of preference tuples (total popcount), kept for O(1) `len`.
    len: usize,
}

impl PartialEq for CompiledRelation {
    /// Representation-independent equality: same universe, same tuple set.
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe
            && self.len == other.len
            && (0..self.universe.len()).all(|i| self.row(i) == other.row(i))
    }
}

impl Eq for CompiledRelation {}

impl CompiledRelation {
    /// Compiles `relation` over exactly the values it mentions.
    pub fn compile(relation: &Relation) -> Self {
        let mut universe: Vec<ValueId> = relation.values().into_iter().collect();
        universe.sort_unstable();
        Self::compile_with_universe(relation, &universe)
    }

    /// Compiles `relation` over a caller-chosen `universe` (sorted,
    /// duplicate-free, covering every value the relation mentions).
    ///
    /// Sharing one universe across many relations of the same attribute puts
    /// their bit-rows in the same index space, which is what makes
    /// [`CompiledRelation::intersect`] and the popcount-based similarity
    /// measures plain word-wise operations.
    ///
    /// # Panics
    /// Panics if `universe` misses a value the relation mentions; debug
    /// builds additionally assert that `universe` is sorted and
    /// duplicate-free. Compilation is a build-time step, so the covering
    /// check is kept in release builds too.
    pub fn compile_with_universe(relation: &Relation, universe: &[ValueId]) -> Self {
        debug_assert!(universe.windows(2).all(|w| w[0] < w[1]), "universe sorted");
        let max_raw = universe.last().map_or(0, |v| v.raw() as usize + 1);
        let mut index_of = vec![NONE; max_raw];
        for (i, v) in universe.iter().enumerate() {
            index_of[v.index()] = i as u32;
        }
        let n = universe.len();
        let words_per_row = n.div_ceil(64);
        let dense = |v: ValueId| -> u32 {
            match index_of.get(v.index()).copied() {
                Some(slot) if slot != NONE => slot,
                _ => panic!("universe does not cover value {v} of the relation"),
            }
        };
        let mut pairs: Vec<(u32, u32)> = relation
            .pairs()
            .map(|(x, y)| (dense(x), dense(y)))
            .collect();
        let len = pairs.len();
        pairs.sort_unstable();
        // Group the (already sorted) tuples into per-source bit-rows.
        let mut sparse_rows: Vec<(u32, Box<[u64]>)> = Vec::new();
        let mut i = 0;
        while i < pairs.len() {
            let ix = pairs[i].0;
            let mut row = vec![0u64; words_per_row];
            while i < pairs.len() && pairs[i].0 == ix {
                let iy = pairs[i].1 as usize;
                row[iy / 64] |= 1u64 << (iy % 64);
                i += 1;
            }
            sparse_rows.push((ix, row.into_boxed_slice()));
        }
        Self::with_rows(
            index_of.into(),
            universe.to_vec().into(),
            words_per_row,
            sparse_rows,
            len,
        )
    }

    /// Assembles a relation from its non-empty rows, picking the dense or
    /// sparse representation: sparse only pays off when the universe is
    /// large ([`SPARSE_MIN_UNIVERSE`]) and most rows are empty
    /// ([`SPARSE_ROW_DIV`]).
    fn with_rows(
        index_of: Arc<[u32]>,
        universe: Arc<[ValueId]>,
        words_per_row: usize,
        sparse_rows: Vec<(u32, Box<[u64]>)>,
        len: usize,
    ) -> Self {
        debug_assert!(sparse_rows.windows(2).all(|w| w[0].0 < w[1].0));
        let n = universe.len();
        let rows = if n >= SPARSE_MIN_UNIVERSE && sparse_rows.len() * SPARSE_ROW_DIV <= n {
            Rows::Sparse {
                rows: sparse_rows,
                zeros: vec![0u64; words_per_row].into_boxed_slice(),
            }
        } else {
            let mut bits = vec![0u64; n * words_per_row];
            for (ix, row) in &sparse_rows {
                let start = *ix as usize * words_per_row;
                bits[start..start + words_per_row].copy_from_slice(row);
            }
            Rows::Dense(bits)
        };
        Self {
            index_of,
            universe,
            words_per_row,
            rows,
            len,
        }
    }

    /// Whether this relation currently uses the sparse row representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self.rows, Rows::Sparse { .. })
    }

    /// Approximate heap bytes of this compiled relation (interning tables
    /// plus row storage). The `Arc`-shared tables are counted here even
    /// though relations compiled over one shared universe share them, so
    /// sums over many relations are an upper bound.
    pub fn approx_bytes(&self) -> usize {
        let tables = self.index_of.len() * 4 + self.universe.len() * 4;
        let rows = match &self.rows {
            Rows::Dense(bits) => bits.len() * 8,
            Rows::Sparse { rows, zeros } => (rows.len() + 1) * zeros.len() * 8 + rows.len() * 16,
        };
        std::mem::size_of::<Self>() + tables + rows
    }

    /// The dense index of `v`, if it belongs to the compiled universe.
    #[inline]
    pub fn dense_index(&self, v: ValueId) -> Option<usize> {
        match self.index_of.get(v.index()) {
            Some(&slot) if slot != NONE => Some(slot as usize),
            _ => None,
        }
    }

    /// The interned values, ascending by raw id.
    pub fn universe(&self) -> &[ValueId] {
        &self.universe
    }

    /// Number of interned values.
    pub fn num_values(&self) -> usize {
        self.universe.len()
    }

    /// The bit-row of the `idx`-th interned value: bit `j` set iff
    /// `universe[idx] ≻ universe[j]`. For sparse relations, absent rows
    /// come back as a shared all-zero row.
    #[inline]
    pub fn row(&self, idx: usize) -> &[u64] {
        match &self.rows {
            Rows::Dense(bits) => &bits[idx * self.words_per_row..(idx + 1) * self.words_per_row],
            Rows::Sparse { rows, zeros } => {
                match rows.binary_search_by_key(&(idx as u32), |r| r.0) {
                    Ok(i) => &rows[i].1,
                    Err(_) => zeros,
                }
            }
        }
    }

    #[inline]
    fn bit(&self, ix: usize, iy: usize) -> bool {
        match &self.rows {
            Rows::Dense(bits) => (bits[ix * self.words_per_row + iy / 64] >> (iy % 64)) & 1 == 1,
            Rows::Sparse { .. } => (self.row(ix)[iy / 64] >> (iy % 64)) & 1 == 1,
        }
    }

    /// Whether `x ≻ y` holds: two interning loads and one shift-and-mask.
    #[inline]
    pub fn prefers(&self, x: ValueId, y: ValueId) -> bool {
        match (self.dense_index(x), self.dense_index(y)) {
            (Some(ix), Some(iy)) => self.bit(ix, iy),
            _ => false,
        }
    }

    /// Whether `x ≻ y` or `y ≻ x` holds.
    #[inline]
    pub fn comparable(&self, x: ValueId, y: ValueId) -> bool {
        match (self.dense_index(x), self.dense_index(y)) {
            (Some(ix), Some(iy)) => self.bit(ix, iy) || self.bit(iy, ix),
            _ => false,
        }
    }

    /// Number of preference tuples in the closure (`|≻ᵈ|`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation holds no preference tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `other` was compiled over the same universe, i.e. the two bit
    /// matrices live in the same index space.
    pub fn same_universe(&self, other: &CompiledRelation) -> bool {
        Arc::ptr_eq(&self.universe, &other.universe) || self.universe == other.universe
    }

    /// `|≻ᵈ_1 ∩ ≻ᵈ_2|` (`simᵈ_i`, Eq. 2) as word-wise AND + popcount.
    ///
    /// # Panics
    /// Panics (debug builds) unless both relations share a universe.
    pub fn intersection_size(&self, other: &CompiledRelation) -> usize {
        debug_assert!(self.same_universe(other), "universes must match");
        match (&self.rows, &other.rows) {
            (Rows::Dense(a), Rows::Dense(b)) => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum(),
            // AND against an absent (all-zero) row is zero, so it suffices
            // to walk whichever side is sparse.
            (Rows::Sparse { rows, .. }, _) => rows
                .iter()
                .map(|(ix, row)| {
                    row.iter()
                        .zip(other.row(*ix as usize))
                        .map(|(x, y)| (x & y).count_ones() as usize)
                        .sum::<usize>()
                })
                .sum(),
            (_, Rows::Sparse { rows, .. }) => rows
                .iter()
                .map(|(ix, row)| {
                    row.iter()
                        .zip(self.row(*ix as usize))
                        .map(|(x, y)| (x & y).count_ones() as usize)
                        .sum::<usize>()
                })
                .sum(),
        }
    }

    /// `|≻ᵈ_1 ∪ ≻ᵈ_2|` (denominator of the Jaccard measure, Eq. 3).
    ///
    /// # Panics
    /// Panics (debug builds) unless both relations share a universe.
    pub fn union_size(&self, other: &CompiledRelation) -> usize {
        self.len + other.len - self.intersection_size(other)
    }

    /// The common preference relation `≻ᵈ_U = ≻ᵈ_1 ∩ ≻ᵈ_2` (Def. 4.1) as a
    /// word-wise AND. The intersection of strict partial orders is a strict
    /// partial order (Theorem 4.2), so the result needs no re-closure.
    ///
    /// # Panics
    /// Panics (debug builds) unless both relations share a universe.
    pub fn intersect(&self, other: &CompiledRelation) -> CompiledRelation {
        debug_assert!(self.same_universe(other), "universes must match");
        let mut sparse_rows: Vec<(u32, Box<[u64]>)> = Vec::new();
        let mut len = 0usize;
        let mut and_row = |ix: usize| {
            let a = self.row(ix);
            let b = other.row(ix);
            let mut count = 0usize;
            let row: Box<[u64]> = a
                .iter()
                .zip(b)
                .map(|(x, y)| {
                    let word = x & y;
                    count += word.count_ones() as usize;
                    word
                })
                .collect();
            if count > 0 {
                len += count;
                sparse_rows.push((ix as u32, row));
            }
        };
        // A row absent on either side ANDs to zero, so walk the sparser
        // side when one exists.
        match (&self.rows, &other.rows) {
            (Rows::Sparse { rows, .. }, _) => rows.iter().for_each(|(ix, _)| and_row(*ix as usize)),
            (_, Rows::Sparse { rows, .. }) => rows.iter().for_each(|(ix, _)| and_row(*ix as usize)),
            _ => (0..self.universe.len()).for_each(&mut and_row),
        }
        Self::with_rows(
            self.index_of.clone(),
            self.universe.clone(),
            self.words_per_row,
            sparse_rows,
            len,
        )
    }

    /// Iterates over all preference tuples of the closure.
    pub fn pairs(&self) -> impl Iterator<Item = (ValueId, ValueId)> + '_ {
        (0..self.universe.len()).flat_map(move |ix| {
            self.iter_row(ix)
                .map(move |iy| (self.universe[ix], self.universe[iy]))
        })
    }

    /// Iterates over the set bit positions of row `ix`.
    fn iter_row(&self, ix: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(ix).iter().enumerate().flat_map(|(w, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(w * 64 + bit)
            })
        })
    }

    /// Decompiles back to the hash-map [`Relation`] (for interop with the
    /// build-time APIs; the pair set is already transitively closed).
    pub fn to_relation(&self) -> Relation {
        Relation::from_closed_pairs(self.pairs().collect())
    }

    /// The Hasse value weights of Sec. 5 (Eq. 4), indexed by dense index:
    /// `1 / (1 + min distance from a maximal value over the Hasse diagram)`.
    ///
    /// Values of the universe not mentioned by any tuple get weight 1,
    /// matching [`crate::HasseDiagram::weight`]'s convention that an
    /// unconstrained value is trivially maximal.
    pub fn value_weights(&self) -> Vec<f64> {
        let n = self.universe.len();
        // Successor lists and predecessor counts from the bit matrix.
        let succ: Vec<Vec<usize>> = (0..n).map(|ix| self.iter_row(ix).collect()).collect();
        let mut pred_count = vec![0usize; n];
        for ys in &succ {
            for &y in ys {
                pred_count[y] += 1;
            }
        }
        // Cover (Hasse) edges: (x, y) with no z between them. The inner test
        // is a single bit lookup per candidate intermediate.
        let mut cover: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (x, ys) in succ.iter().enumerate() {
            for &y in ys {
                let is_cover = !ys.iter().any(|&z| z != y && self.bit(z, y));
                if is_cover {
                    cover[x].push(y);
                }
            }
        }
        // Multi-source BFS from the maximal (predecessor-free, mentioned)
        // values, exactly as HasseDiagram::of does on the hash-map form.
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        for x in 0..n {
            let mentioned = !succ[x].is_empty() || pred_count[x] > 0;
            if mentioned && pred_count[x] == 0 {
                dist[x] = 0;
                queue.push_back(x);
            }
        }
        while let Some(x) = queue.pop_front() {
            for &y in &cover[x] {
                if dist[y] == u32::MAX {
                    dist[y] = dist[x] + 1;
                    queue.push_back(y);
                }
            }
        }
        dist.into_iter()
            .map(|d| {
                if d == u32::MAX {
                    1.0
                } else {
                    1.0 / (f64::from(d) + 1.0)
                }
            })
            .collect()
    }
}

/// A user's (or virtual user's) preferences compiled for the hot path: one
/// [`CompiledRelation`] per attribute.
#[derive(Debug, Clone)]
pub struct CompiledPreference {
    relations: Vec<CompiledRelation>,
}

impl CompiledPreference {
    /// Compiles every attribute relation of `preference`.
    pub fn compile(preference: &Preference) -> Self {
        Self {
            relations: preference
                .relations()
                .map(|(_, rel)| CompiledRelation::compile(rel))
                .collect(),
        }
    }

    /// Bundles pre-compiled per-attribute relations (in attribute order).
    pub fn from_relations(relations: Vec<CompiledRelation>) -> Self {
        Self { relations }
    }

    /// Number of attributes covered (`|D|`).
    pub fn arity(&self) -> usize {
        self.relations.len()
    }

    /// The compiled relation for attribute `attr`.
    ///
    /// # Panics
    /// Panics if `attr` is out of range.
    pub fn relation(&self, attr: AttrId) -> &CompiledRelation {
        &self.relations[attr.index()]
    }

    /// Total number of preference tuples across all attributes.
    pub fn total_pairs(&self) -> usize {
        self.relations.iter().map(CompiledRelation::len).sum()
    }

    /// Whether the preference holds no tuples at all.
    pub fn is_empty(&self) -> bool {
        self.relations.iter().all(CompiledRelation::is_empty)
    }

    /// Whether value `x` is preferred to `y` on attribute `attr`.
    #[inline]
    pub fn prefers(&self, attr: AttrId, x: ValueId, y: ValueId) -> bool {
        self.relations[attr.index()].prefers(x, y)
    }

    /// Whether object `a` dominates object `b` (Def. 3.2).
    #[inline]
    pub fn dominates(&self, a: &Object, b: &Object) -> bool {
        matches!(self.compare(a, b), Dominance::Dominates)
    }

    /// Full three-way-plus-identical comparison of two objects, semantically
    /// identical to [`Preference::compare`] but with every `prefers` test a
    /// bit lookup. Only the first `arity()` attributes are considered.
    pub fn compare(&self, a: &Object, b: &Object) -> Dominance {
        let mut a_better = false;
        let mut b_better = false;
        for (idx, rel) in self.relations.iter().enumerate() {
            let attr = AttrId::from(idx);
            let (av, bv) = (a.value(attr), b.value(attr));
            if av == bv {
                continue;
            }
            match (rel.dense_index(av), rel.dense_index(bv)) {
                (Some(ia), Some(ib)) => {
                    if rel.bit(ia, ib) {
                        a_better = true;
                    } else if rel.bit(ib, ia) {
                        b_better = true;
                    } else {
                        return Dominance::Incomparable;
                    }
                }
                // A value outside the relation's universe is incomparable to
                // every differing value.
                _ => return Dominance::Incomparable,
            }
            if a_better && b_better {
                return Dominance::Incomparable;
            }
        }
        match (a_better, b_better) {
            (true, false) => Dominance::Dominates,
            (false, true) => Dominance::DominatedBy,
            (false, false) => Dominance::Identical,
            (true, true) => Dominance::Incomparable,
        }
    }

    /// Compares `object` against a batch of others in one call, returning
    /// one [`Dominance`] per element of `others` (in order). This is the
    /// shape of the frontier-scan loops in `pm-core`, exposed so callers and
    /// benches can drive the hot path without per-comparison dispatch.
    pub fn dominates_batch<'a, I>(&self, object: &Object, others: I) -> Vec<Dominance>
    where
        I: IntoIterator<Item = &'a Object>,
    {
        others
            .into_iter()
            .map(|other| self.compare(object, other))
            .collect()
    }

    /// Approximate heap bytes across all attribute relations (see
    /// [`CompiledRelation::approx_bytes`] for the sharing caveat).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .relations
                .iter()
                .map(CompiledRelation::approx_bytes)
                .sum::<usize>()
    }

    /// Restricts the compiled preference to its first `k` attributes.
    pub fn project(&self, k: usize) -> CompiledPreference {
        CompiledPreference {
            relations: self.relations[..k.min(self.relations.len())].to_vec(),
        }
    }
}

impl Preference {
    /// Compiles this preference for the monitoring hot path.
    pub fn compile(&self) -> CompiledPreference {
        CompiledPreference::compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hasse::HasseDiagram;
    use pm_model::ObjectId;

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn a(i: u32) -> AttrId {
        AttrId::new(i)
    }

    fn obj(id: u64, vals: &[u32]) -> Object {
        Object::new(ObjectId::new(id), vals.iter().map(|&x| v(x)).collect())
    }

    #[test]
    fn compiled_prefers_matches_relation() {
        let rel = Relation::from_pairs([(v(0), v(1)), (v(1), v(2)), (v(5), v(2))]).unwrap();
        let c = CompiledRelation::compile(&rel);
        assert_eq!(c.len(), rel.len());
        assert_eq!(c.num_values(), 4);
        for x in 0..8 {
            for y in 0..8 {
                assert_eq!(c.prefers(v(x), v(y)), rel.prefers(v(x), v(y)), "({x}, {y})");
                assert_eq!(c.comparable(v(x), v(y)), rel.comparable(v(x), v(y)));
            }
        }
    }

    #[test]
    fn compiled_pairs_round_trip() {
        let rel = Relation::from_pairs([(v(3), v(1)), (v(1), v(0)), (v(7), v(0))]).unwrap();
        let c = CompiledRelation::compile(&rel);
        let back = c.to_relation();
        assert_eq!(back, rel);
        let mut pairs: Vec<_> = c.pairs().collect();
        pairs.sort();
        let mut expected: Vec<_> = rel.pairs().collect();
        expected.sort();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn empty_relation_compiles_to_empty_matrix() {
        let c = CompiledRelation::compile(&Relation::new());
        assert!(c.is_empty());
        assert_eq!(c.num_values(), 0);
        assert!(!c.prefers(v(0), v(1)));
        assert!(c.pairs().next().is_none());
    }

    #[test]
    fn wide_universe_spans_multiple_words() {
        // 70 values forces words_per_row = 2, exercising cross-word bits.
        let rel = Relation::from_pairs((0..69).map(|i| (v(i), v(i + 1)))).unwrap();
        let c = CompiledRelation::compile(&rel);
        assert_eq!(c.num_values(), 70);
        assert_eq!(c.len(), rel.len());
        assert!(c.prefers(v(0), v(69)), "closure bit in the second word");
        assert!(!c.prefers(v(69), v(0)));
        assert_eq!(c.to_relation(), rel);
    }

    #[test]
    fn shared_universe_intersection_is_and_popcount() {
        let a = Relation::from_pairs([(v(1), v(0)), (v(2), v(0)), (v(3), v(0))]).unwrap();
        let b = Relation::from_pairs([(v(1), v(0)), (v(3), v(2)), (v(3), v(0))]).unwrap();
        let (va, vb) = (a.values(), b.values());
        let mut universe: Vec<ValueId> = va.union(&vb).copied().collect();
        universe.sort_unstable();
        let ca = CompiledRelation::compile_with_universe(&a, &universe);
        let cb = CompiledRelation::compile_with_universe(&b, &universe);
        assert_eq!(ca.intersection_size(&cb), a.intersection_size(&b));
        assert_eq!(ca.union_size(&cb), a.union_size(&b));
        assert_eq!(ca.intersect(&cb).to_relation(), a.intersection(&b));
    }

    #[test]
    fn value_weights_match_hasse_diagram() {
        // U2 on brand (Example 5.4): Samsung ≻ Lenovo ≻ {Apple, Toshiba}.
        let rel = Relation::from_pairs([(v(2), v(1)), (v(1), v(0)), (v(1), v(3))]).unwrap();
        let c = CompiledRelation::compile(&rel);
        let hasse = HasseDiagram::of(&rel);
        let weights = c.value_weights();
        for (i, &value) in c.universe().iter().enumerate() {
            assert!(
                (weights[i] - hasse.weight(value)).abs() < 1e-15,
                "weight of {value}"
            );
        }
    }

    #[test]
    fn unmentioned_universe_values_get_weight_one() {
        let rel = Relation::from_pairs([(v(0), v(1))]).unwrap();
        let universe = [v(0), v(1), v(2)];
        let c = CompiledRelation::compile_with_universe(&rel, &universe);
        let weights = c.value_weights();
        assert_eq!(weights, vec![1.0, 0.5, 1.0]);
    }

    #[test]
    fn big_universe_few_rows_goes_sparse_and_stays_equivalent() {
        // A 300-value universe with only two source rows: sparse kicks in.
        let universe: Vec<ValueId> = (0..300).map(v).collect();
        let rel = Relation::from_pairs([(v(7), v(250)), (v(7), v(3)), (v(299), v(0))]).unwrap();
        let sparse = CompiledRelation::compile_with_universe(&rel, &universe);
        assert!(sparse.is_sparse());
        // The same relation compiled over just its own values stays dense.
        let dense = CompiledRelation::compile(&rel);
        assert!(!dense.is_sparse());
        for x in [0, 3, 7, 250, 299, 42] {
            for y in [0, 3, 7, 250, 299, 42] {
                assert_eq!(sparse.prefers(v(x), v(y)), rel.prefers(v(x), v(y)));
            }
        }
        assert_eq!(sparse.len(), rel.len());
        assert_eq!(sparse.to_relation(), rel);
        assert!(
            sparse.approx_bytes() < 300 * 300 / 8,
            "sparse rows beat the dense matrix ({} bytes)",
            sparse.approx_bytes()
        );
    }

    #[test]
    fn sparse_and_dense_of_same_relation_compare_equal() {
        let universe: Vec<ValueId> = (0..200).map(v).collect();
        let rel = Relation::from_pairs([(v(1), v(150)), (v(1), v(0))]).unwrap();
        let sparse = CompiledRelation::compile_with_universe(&rel, &universe);
        assert!(sparse.is_sparse());
        // Force a dense sibling over the identical universe: a relation
        // touching more than universe/SPARSE_ROW_DIV rows stays dense.
        let mut bulk_pairs: Vec<_> = (100..200).map(|i| (v(i), v(99))).collect();
        bulk_pairs.extend([(v(1), v(150)), (v(1), v(0))]);
        let bulk = Relation::from_pairs(bulk_pairs).unwrap();
        let dense_bulk = CompiledRelation::compile_with_universe(&bulk, &universe);
        assert!(!dense_bulk.is_sparse());
        // Intersecting the dense bulk with the sparse relation yields
        // exactly the sparse relation's tuples — and equality holds across
        // representations.
        let inter = dense_bulk.intersect(&sparse);
        assert_eq!(inter, sparse);
        assert_eq!(sparse, inter);
        assert_eq!(inter.to_relation(), rel);
    }

    #[test]
    fn sparse_intersection_counts_match_hash_form() {
        let universe: Vec<ValueId> = (0..256).map(v).collect();
        let a = Relation::from_pairs([(v(10), v(20)), (v(10), v(30)), (v(200), v(0))]).unwrap();
        let b = Relation::from_pairs([(v(10), v(20)), (v(200), v(0)), (v(200), v(5))]).unwrap();
        let ca = CompiledRelation::compile_with_universe(&a, &universe);
        let cb = CompiledRelation::compile_with_universe(&b, &universe);
        assert!(ca.is_sparse() && cb.is_sparse());
        assert_eq!(ca.intersection_size(&cb), a.intersection_size(&b));
        assert_eq!(cb.intersection_size(&ca), a.intersection_size(&b));
        assert_eq!(ca.union_size(&cb), a.union_size(&b));
        assert_eq!(ca.intersect(&cb).to_relation(), a.intersection(&b));
    }

    #[test]
    fn sparse_value_weights_match_hasse_diagram() {
        let universe: Vec<ValueId> = (0..180).map(v).collect();
        let rel = Relation::from_pairs([(v(2), v(100)), (v(100), v(0)), (v(100), v(3))]).unwrap();
        let c = CompiledRelation::compile_with_universe(&rel, &universe);
        assert!(c.is_sparse());
        let hasse = HasseDiagram::of(&rel);
        let weights = c.value_weights();
        for (i, &value) in c.universe().iter().enumerate() {
            let expected = if rel.values().contains(&value) {
                hasse.weight(value)
            } else {
                1.0
            };
            assert!((weights[i] - expected).abs() < 1e-15, "weight of {value}");
        }
    }

    #[test]
    fn compiled_preference_compare_matches_preference() {
        let mut p = Preference::new(3);
        p.prefer(a(0), v(2), v(1));
        p.prefer(a(0), v(1), v(3));
        p.prefer(a(1), v(0), v(1));
        p.prefer(a(2), v(1), v(2));
        p.prefer(a(2), v(1), v(3));
        p.prefer(a(2), v(1), v(0));
        let c = p.compile();
        assert_eq!(c.arity(), 3);
        assert_eq!(c.total_pairs(), p.total_pairs());
        let objects = [
            obj(1, &[1, 0, 0]),
            obj(2, &[2, 0, 1]),
            obj(3, &[2, 2, 1]),
            obj(4, &[3, 1, 3]),
            obj(5, &[9, 9, 9]),
        ];
        for x in &objects {
            for y in &objects {
                assert_eq!(c.compare(x, y), p.compare(x, y), "{} vs {}", x.id(), y.id());
            }
        }
        assert!(c.dominates(&objects[1], &objects[0]));
    }

    #[test]
    fn dominates_batch_matches_pointwise_compare() {
        let mut p = Preference::new(1);
        p.prefer(a(0), v(0), v(1));
        p.prefer(a(0), v(1), v(2));
        let c = p.compile();
        let best = obj(0, &[0]);
        let others = [obj(1, &[1]), obj(2, &[2]), obj(3, &[0]), obj(4, &[7])];
        let verdicts = c.dominates_batch(&best, others.iter());
        assert_eq!(
            verdicts,
            vec![
                Dominance::Dominates,
                Dominance::Dominates,
                Dominance::Identical,
                Dominance::Incomparable,
            ]
        );
    }

    #[test]
    fn projection_restricts_attributes() {
        let mut p = Preference::new(2);
        p.prefer(a(0), v(0), v(1));
        p.prefer(a(1), v(1), v(0));
        let c = p.compile().project(1);
        assert_eq!(c.arity(), 1);
        let x = obj(0, &[0, 0]);
        let y = obj(1, &[1, 1]);
        assert_eq!(c.compare(&x, &y), Dominance::Dominates);
    }

    #[test]
    fn empty_preference_is_empty_and_identical_everywhere() {
        let c = Preference::new(2).compile();
        assert!(c.is_empty());
        let x = obj(0, &[0, 1]);
        let y = obj(1, &[2, 3]);
        assert_eq!(c.compare(&x, &y), Dominance::Incomparable);
        assert_eq!(c.compare(&x, &x), Dominance::Identical);
    }
}
