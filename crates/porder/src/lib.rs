//! # pm-porder
//!
//! Strict partial orders over categorical attribute values, per-user
//! preferences, and object dominance — the data structures of Sections 3–5
//! of Sultana & Li (EDBT 2018).
//!
//! * [`Relation`] — a strict partial order `≻ᵈ_c` over one attribute's value
//!   domain, stored as its transitive closure with incremental-closure
//!   insertion and validation of irreflexivity / asymmetry / transitivity.
//! * [`CompiledRelation`] / [`CompiledPreference`] — the immutable bitset
//!   form the monitoring hot path runs on: values interned to dense indices,
//!   the closure as one bit-row per value, `prefers` a single shift+mask and
//!   intersection a bitwise AND (+ popcount for the similarity measures).
//! * [`HasseDiagram`] — the transitive reduction of a relation, plus maximal
//!   values (Def. 5.3) and minimum distances from maximal values used by the
//!   weighted similarity measures (Eq. 4–5).
//! * [`Preference`] — a user's (or virtual user's) preferences on all
//!   attributes, with the object-dominance test of Def. 3.2.
//! * [`Fingerprint`] / [`PreferenceInterner`] — canonical 128-bit preference
//!   fingerprints and the reference-counted interner that deduplicates
//!   compiled preferences across a large user population (Sec. 4's
//!   shared-preference premise cashed in at the representation layer).
//! * [`RelationUnion`] / [`PreferenceUniverse`] — the union of every
//!   observed relation (per attribute, as growable bit rows) and the
//!   deduplicated set of observed preferences: the dominance kernel behind
//!   exact history compaction in `pm-core`.
//! * [`naive_pareto_frontier`] — naive frontier computation used as a test
//!   oracle by the monitoring algorithms in `pm-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod fingerprint;
pub mod frontier;
pub mod hasse;
pub mod preference;
pub mod relation;
pub mod union;

pub use compiled::{CompiledPreference, CompiledRelation};
pub use fingerprint::{Fingerprint, Interned, PreferenceInterner};
pub use frontier::naive_pareto_frontier;
pub use hasse::HasseDiagram;
pub use preference::{Dominance, Preference};
pub use relation::{Relation, RelationError};
pub use union::{PreferenceUniverse, RelationUnion};
