//! A small Zipf(α) sampler over a finite domain.
//!
//! Real attribute-value popularity (actors, venues, keywords) is heavily
//! skewed; a Zipf distribution reproduces that skew so that different users
//! interact with overlapping value sets, which in turn makes their derived
//! preference relations overlap — the property the clustering step exploits.

use rand::Rng;

/// Samples indices `0..n` with probability proportional to `1 / (i+1)^alpha`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` items with skew `alpha` (0 = uniform).
    ///
    /// # Panics
    /// Panics if `n` is zero or `alpha` is negative / not finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "domain must not be empty");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and non-negative"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(alpha);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    /// Number of items in the domain.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the domain is empty (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let sampler = ZipfSampler::new(10, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn skewed_sampler_prefers_small_indices() {
        let sampler = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0;
        let draws = 5000;
        for _ in 0..draws {
            if sampler.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With α = 1.2 the first 10 of 100 items carry well over half the mass.
        assert!(head as f64 > 0.5 * draws as f64, "head draws = {head}");
    }

    #[test]
    fn uniform_sampler_spreads_mass() {
        let sampler = ZipfSampler::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 700, "uniform draw too skewed: {counts:?}");
        }
    }

    #[test]
    fn singleton_domain_always_returns_zero() {
        let sampler = ZipfSampler::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(sampler.sample(&mut rng), 0);
        assert_eq!(sampler.len(), 1);
        assert!(!sampler.is_empty());
    }

    #[test]
    #[should_panic(expected = "domain must not be empty")]
    fn empty_domain_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
