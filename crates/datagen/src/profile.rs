//! Dataset profiles: the shape parameters of the simulated datasets.

/// One simulated attribute (e.g. *actor* or *conference*).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeSpec {
    /// Attribute name.
    pub name: String,
    /// Number of distinct values in the attribute's domain.
    pub domain_size: usize,
    /// Zipf skew of value popularity (0 = uniform).
    pub popularity_skew: f64,
}

impl AttributeSpec {
    /// Creates an attribute spec.
    pub fn new(name: impl Into<String>, domain_size: usize, popularity_skew: f64) -> Self {
        Self {
            name: name.into(),
            domain_size,
            popularity_skew,
        }
    }
}

/// Shape parameters of a simulated dataset.
///
/// The two presets mirror the paper's datasets:
///
/// * [`DatasetProfile::movie`] — 12,749 objects, 1,000 users, attributes
///   actor / director / genre / writer (Netflix ⋈ IMDB).
/// * [`DatasetProfile::publication`] — 17,598 objects, 1,000 users,
///   attributes affiliation / author / conference / keyword (ACM DL).
///
/// Both are far larger than a unit test wants, so [`DatasetProfile::scaled`]
/// shrinks every size-like parameter while keeping the shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Human-readable dataset name (used in experiment reports).
    pub name: String,
    /// The simulated attributes, in schema order.
    pub attributes: Vec<AttributeSpec>,
    /// Number of objects in the base dataset (`|O|`).
    pub num_objects: usize,
    /// Number of users (`|C|`).
    pub num_users: usize,
    /// Number of latent taste archetypes users are drawn from.
    pub num_archetypes: usize,
    /// How many objects each user has interacted with (rated / cited).
    pub interactions_per_user: usize,
    /// Probability that a user's rating deviates from their archetype's
    /// affinity (introduces per-user idiosyncrasies).
    pub rating_noise: f64,
    /// How strongly value affinities follow global value popularity
    /// (0 = purely archetype-specific tastes, 1 = everybody likes the
    /// popular values). Popular values are also the frequently seen ones,
    /// so a higher bias yields denser derived partial orders and more
    /// shared preference tuples across users — mirroring real rating data.
    pub popularity_bias: f64,
}

impl DatasetProfile {
    /// The movie-dataset profile (Netflix ⋈ IMDB shape, Sec. 8.1).
    pub fn movie() -> Self {
        Self {
            name: "movie".to_owned(),
            attributes: vec![
                AttributeSpec::new("actor", 80, 1.3),
                AttributeSpec::new("director", 50, 1.3),
                AttributeSpec::new("genre", 15, 0.9),
                AttributeSpec::new("writer", 60, 1.3),
            ],
            num_objects: 12_749,
            num_users: 1_000,
            num_archetypes: 12,
            interactions_per_user: 150,
            rating_noise: 0.05,
            popularity_bias: 0.9,
        }
    }

    /// The publication-dataset profile (ACM DL shape, Sec. 8.1).
    pub fn publication() -> Self {
        Self {
            name: "publication".to_owned(),
            attributes: vec![
                AttributeSpec::new("affiliation", 60, 1.3),
                AttributeSpec::new("author", 80, 1.3),
                AttributeSpec::new("conference", 30, 1.0),
                AttributeSpec::new("keyword", 50, 1.3),
            ],
            num_objects: 17_598,
            num_users: 1_000,
            num_archetypes: 16,
            interactions_per_user: 120,
            rating_noise: 0.05,
            popularity_bias: 0.85,
        }
    }

    /// Returns a copy with every size-like parameter multiplied by `factor`
    /// (minimum 1), keeping the dataset's shape while making it small enough
    /// for tests and 1-core benchmark runs.
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |v: usize| ((v as f64 * factor).round() as usize).max(1);
        Self {
            name: self.name.clone(),
            attributes: self
                .attributes
                .iter()
                .map(|a| AttributeSpec::new(&a.name, scale(a.domain_size), a.popularity_skew))
                .collect(),
            num_objects: scale(self.num_objects),
            num_users: scale(self.num_users),
            num_archetypes: scale(self.num_archetypes),
            interactions_per_user: scale(self.interactions_per_user),
            rating_noise: self.rating_noise,
            popularity_bias: self.popularity_bias,
        }
    }

    /// Returns a copy restricted to the first `d` attributes, for the
    /// dimensionality-sweep experiments (Figs. 6, 7, 10, 11).
    pub fn with_dimensions(&self, d: usize) -> Self {
        let mut copy = self.clone();
        copy.attributes.truncate(d.max(1));
        copy
    }

    /// Returns a copy with a different user count.
    pub fn with_users(&self, users: usize) -> Self {
        let mut copy = self.clone();
        copy.num_users = users.max(1);
        copy
    }

    /// Returns a copy with a different object count.
    pub fn with_objects(&self, objects: usize) -> Self {
        let mut copy = self.clone();
        copy.num_objects = objects.max(1);
        copy
    }

    /// Returns a copy with a different per-user interaction count.
    pub fn with_interactions(&self, interactions: usize) -> Self {
        let mut copy = self.clone();
        copy.interactions_per_user = interactions.max(1);
        copy
    }

    /// Dimensionality `d = |D|`.
    pub fn dimensions(&self) -> usize {
        self.attributes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_sizes() {
        let movie = DatasetProfile::movie();
        assert_eq!(movie.num_objects, 12_749);
        assert_eq!(movie.num_users, 1_000);
        assert_eq!(movie.dimensions(), 4);
        let publication = DatasetProfile::publication();
        assert_eq!(publication.num_objects, 17_598);
        assert_eq!(publication.dimensions(), 4);
        assert_ne!(movie.name, publication.name);
    }

    #[test]
    fn scaling_shrinks_but_never_hits_zero() {
        let tiny = DatasetProfile::movie().scaled(0.0001);
        assert!(tiny.num_objects >= 1);
        assert!(tiny.num_users >= 1);
        assert!(tiny.attributes.iter().all(|a| a.domain_size >= 1));
        let small = DatasetProfile::movie().scaled(0.01);
        assert_eq!(small.num_objects, 127);
        assert_eq!(small.num_users, 10);
    }

    #[test]
    fn dimension_projection_truncates_attributes() {
        let p = DatasetProfile::publication().with_dimensions(2);
        assert_eq!(p.dimensions(), 2);
        assert_eq!(p.attributes[0].name, "affiliation");
        // Asking for at least one dimension.
        assert_eq!(DatasetProfile::movie().with_dimensions(0).dimensions(), 1);
    }

    #[test]
    fn with_users_and_objects_override_counts() {
        let p = DatasetProfile::movie().with_users(42).with_objects(99);
        assert_eq!(p.num_users, 42);
        assert_eq!(p.num_objects, 99);
    }
}
