//! Dataset profiles: the shape parameters of the simulated datasets.

use std::fmt;

/// Why a [`DatasetProfile`] cannot generate a dataset. Returned by
/// [`DatasetProfile::validate`] (and thus by
/// [`crate::DatasetBuilder::try_build`]) instead of panicking deep inside
/// the samplers.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// `num_users` is zero — there is nobody to derive preferences for.
    NoUsers,
    /// `num_archetypes` is zero — the archetype set would be empty and no
    /// user could be assigned a taste.
    NoArchetypes,
    /// The attribute list is empty — objects would have arity zero.
    NoAttributes,
    /// The named attribute has an empty value domain.
    EmptyDomain(String),
    /// `distinct_preferences` is `Some(0)` — an empty preference pool.
    EmptyPreferencePool,
    /// A skew parameter is negative or not finite (attribute name, value).
    BadSkew(String, f64),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::NoUsers => write!(f, "num_users must be at least 1"),
            ProfileError::NoArchetypes => write!(f, "num_archetypes must be at least 1"),
            ProfileError::NoAttributes => write!(f, "at least one attribute is required"),
            ProfileError::EmptyDomain(name) => {
                write!(f, "attribute {name:?} has an empty value domain")
            }
            ProfileError::EmptyPreferencePool => {
                write!(f, "distinct_preferences must be at least 1 when set")
            }
            ProfileError::BadSkew(name, skew) => {
                write!(f, "skew of {name:?} must be finite and >= 0, got {skew}")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// One simulated attribute (e.g. *actor* or *conference*).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeSpec {
    /// Attribute name.
    pub name: String,
    /// Number of distinct values in the attribute's domain.
    pub domain_size: usize,
    /// Zipf skew of value popularity (0 = uniform).
    pub popularity_skew: f64,
}

impl AttributeSpec {
    /// Creates an attribute spec.
    pub fn new(name: impl Into<String>, domain_size: usize, popularity_skew: f64) -> Self {
        Self {
            name: name.into(),
            domain_size,
            popularity_skew,
        }
    }
}

/// Shape parameters of a simulated dataset.
///
/// The two presets mirror the paper's datasets:
///
/// * [`DatasetProfile::movie`] — 12,749 objects, 1,000 users, attributes
///   actor / director / genre / writer (Netflix ⋈ IMDB).
/// * [`DatasetProfile::publication`] — 17,598 objects, 1,000 users,
///   attributes affiliation / author / conference / keyword (ACM DL).
///
/// Both are far larger than a unit test wants, so [`DatasetProfile::scaled`]
/// shrinks every size-like parameter while keeping the shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Human-readable dataset name (used in experiment reports).
    pub name: String,
    /// The simulated attributes, in schema order.
    pub attributes: Vec<AttributeSpec>,
    /// Number of objects in the base dataset (`|O|`).
    pub num_objects: usize,
    /// Number of users (`|C|`).
    pub num_users: usize,
    /// Number of latent taste archetypes users are drawn from.
    pub num_archetypes: usize,
    /// How many objects each user has interacted with (rated / cited).
    pub interactions_per_user: usize,
    /// Probability that a user's rating deviates from their archetype's
    /// affinity (introduces per-user idiosyncrasies).
    pub rating_noise: f64,
    /// How strongly value affinities follow global value popularity
    /// (0 = purely archetype-specific tastes, 1 = everybody likes the
    /// popular values). Popular values are also the frequently seen ones,
    /// so a higher bias yields denser derived partial orders and more
    /// shared preference tuples across users — mirroring real rating data.
    pub popularity_bias: f64,
    /// When `Some(k)`, the population draws whole preferences from a pool
    /// of at most `k` distinct prototypes (derived through the normal
    /// archetype pipeline) instead of deriving one per user. This is the
    /// scale knob of the shared-preference premise (Sec. 4): distinct
    /// preferences stay bounded while `num_users` grows to 100k–1M.
    pub distinct_preferences: Option<usize>,
    /// Zipf skew of pool popularity when `distinct_preferences` is set
    /// (0 = uniform assignment, larger = a few prototypes dominate the
    /// population, as in real rating data).
    pub preference_skew: f64,
}

impl DatasetProfile {
    /// The movie-dataset profile (Netflix ⋈ IMDB shape, Sec. 8.1).
    pub fn movie() -> Self {
        Self {
            name: "movie".to_owned(),
            attributes: vec![
                AttributeSpec::new("actor", 80, 1.3),
                AttributeSpec::new("director", 50, 1.3),
                AttributeSpec::new("genre", 15, 0.9),
                AttributeSpec::new("writer", 60, 1.3),
            ],
            num_objects: 12_749,
            num_users: 1_000,
            num_archetypes: 12,
            interactions_per_user: 150,
            rating_noise: 0.05,
            popularity_bias: 0.9,
            distinct_preferences: None,
            preference_skew: 1.1,
        }
    }

    /// The publication-dataset profile (ACM DL shape, Sec. 8.1).
    pub fn publication() -> Self {
        Self {
            name: "publication".to_owned(),
            attributes: vec![
                AttributeSpec::new("affiliation", 60, 1.3),
                AttributeSpec::new("author", 80, 1.3),
                AttributeSpec::new("conference", 30, 1.0),
                AttributeSpec::new("keyword", 50, 1.3),
            ],
            num_objects: 17_598,
            num_users: 1_000,
            num_archetypes: 16,
            interactions_per_user: 120,
            rating_noise: 0.05,
            popularity_bias: 0.85,
            distinct_preferences: None,
            preference_skew: 1.1,
        }
    }

    /// Returns a copy with every size-like parameter multiplied by `factor`
    /// (minimum 1), keeping the dataset's shape while making it small enough
    /// for tests and 1-core benchmark runs.
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |v: usize| ((v as f64 * factor).round() as usize).max(1);
        Self {
            name: self.name.clone(),
            attributes: self
                .attributes
                .iter()
                .map(|a| AttributeSpec::new(&a.name, scale(a.domain_size), a.popularity_skew))
                .collect(),
            num_objects: scale(self.num_objects),
            num_users: scale(self.num_users),
            num_archetypes: scale(self.num_archetypes),
            interactions_per_user: scale(self.interactions_per_user),
            rating_noise: self.rating_noise,
            popularity_bias: self.popularity_bias,
            distinct_preferences: self.distinct_preferences.map(scale),
            preference_skew: self.preference_skew,
        }
    }

    /// Returns a copy restricted to the first `d` attributes, for the
    /// dimensionality-sweep experiments (Figs. 6, 7, 10, 11).
    pub fn with_dimensions(&self, d: usize) -> Self {
        let mut copy = self.clone();
        copy.attributes.truncate(d.max(1));
        copy
    }

    /// Returns a copy with a different user count.
    pub fn with_users(&self, users: usize) -> Self {
        let mut copy = self.clone();
        copy.num_users = users.max(1);
        copy
    }

    /// Returns a copy with a different object count.
    pub fn with_objects(&self, objects: usize) -> Self {
        let mut copy = self.clone();
        copy.num_objects = objects.max(1);
        copy
    }

    /// Returns a copy with a different per-user interaction count.
    pub fn with_interactions(&self, interactions: usize) -> Self {
        let mut copy = self.clone();
        copy.interactions_per_user = interactions.max(1);
        copy
    }

    /// Returns a copy that draws whole preferences from a pool of at most
    /// `distinct` prototypes with Zipf skew `skew` (see
    /// [`DatasetProfile::distinct_preferences`]).
    pub fn with_distinct_preferences(&self, distinct: usize, skew: f64) -> Self {
        let mut copy = self.clone();
        copy.distinct_preferences = Some(distinct.max(1));
        copy.preference_skew = skew;
        copy
    }

    /// Dimensionality `d = |D|`.
    pub fn dimensions(&self) -> usize {
        self.attributes.len()
    }

    /// Checks that the profile can actually generate a dataset, returning
    /// the first problem found. Generation panics on an invalid profile;
    /// [`crate::DatasetBuilder::try_build`] surfaces this error instead.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.num_users == 0 {
            return Err(ProfileError::NoUsers);
        }
        if self.num_archetypes == 0 {
            return Err(ProfileError::NoArchetypes);
        }
        if self.attributes.is_empty() {
            return Err(ProfileError::NoAttributes);
        }
        for attr in &self.attributes {
            if attr.domain_size == 0 {
                return Err(ProfileError::EmptyDomain(attr.name.clone()));
            }
            if attr.popularity_skew < 0.0 || !attr.popularity_skew.is_finite() {
                return Err(ProfileError::BadSkew(
                    attr.name.clone(),
                    attr.popularity_skew,
                ));
            }
        }
        match self.distinct_preferences {
            Some(0) => return Err(ProfileError::EmptyPreferencePool),
            Some(_) if self.preference_skew < 0.0 || !self.preference_skew.is_finite() => {
                return Err(ProfileError::BadSkew(
                    "preference pool".to_owned(),
                    self.preference_skew,
                ));
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_sizes() {
        let movie = DatasetProfile::movie();
        assert_eq!(movie.num_objects, 12_749);
        assert_eq!(movie.num_users, 1_000);
        assert_eq!(movie.dimensions(), 4);
        let publication = DatasetProfile::publication();
        assert_eq!(publication.num_objects, 17_598);
        assert_eq!(publication.dimensions(), 4);
        assert_ne!(movie.name, publication.name);
    }

    #[test]
    fn scaling_shrinks_but_never_hits_zero() {
        let tiny = DatasetProfile::movie().scaled(0.0001);
        assert!(tiny.num_objects >= 1);
        assert!(tiny.num_users >= 1);
        assert!(tiny.attributes.iter().all(|a| a.domain_size >= 1));
        let small = DatasetProfile::movie().scaled(0.01);
        assert_eq!(small.num_objects, 127);
        assert_eq!(small.num_users, 10);
    }

    #[test]
    fn dimension_projection_truncates_attributes() {
        let p = DatasetProfile::publication().with_dimensions(2);
        assert_eq!(p.dimensions(), 2);
        assert_eq!(p.attributes[0].name, "affiliation");
        // Asking for at least one dimension.
        assert_eq!(DatasetProfile::movie().with_dimensions(0).dimensions(), 1);
    }

    #[test]
    fn with_users_and_objects_override_counts() {
        let p = DatasetProfile::movie().with_users(42).with_objects(99);
        assert_eq!(p.num_users, 42);
        assert_eq!(p.num_objects, 99);
    }

    #[test]
    fn presets_validate_cleanly() {
        DatasetProfile::movie().validate().unwrap();
        DatasetProfile::publication().validate().unwrap();
        DatasetProfile::movie()
            .with_distinct_preferences(64, 1.1)
            .validate()
            .unwrap();
    }

    #[test]
    fn zero_users_are_rejected() {
        let mut p = DatasetProfile::movie();
        p.num_users = 0;
        assert_eq!(p.validate(), Err(ProfileError::NoUsers));
    }

    #[test]
    fn empty_archetype_set_is_rejected() {
        let mut p = DatasetProfile::movie();
        p.num_archetypes = 0;
        assert_eq!(p.validate(), Err(ProfileError::NoArchetypes));
    }

    #[test]
    fn zero_arity_schema_is_rejected() {
        let mut p = DatasetProfile::movie();
        p.attributes.clear();
        assert_eq!(p.validate(), Err(ProfileError::NoAttributes));
    }

    #[test]
    fn empty_value_domain_is_rejected() {
        let mut p = DatasetProfile::movie();
        p.attributes[2].domain_size = 0;
        assert_eq!(
            p.validate(),
            Err(ProfileError::EmptyDomain("genre".to_owned()))
        );
    }

    #[test]
    fn bad_skews_are_rejected() {
        let mut p = DatasetProfile::movie();
        p.attributes[0].popularity_skew = -1.0;
        assert!(matches!(p.validate(), Err(ProfileError::BadSkew(_, _))));
        let mut p = DatasetProfile::movie().with_distinct_preferences(8, f64::NAN);
        assert!(matches!(p.validate(), Err(ProfileError::BadSkew(_, _))));
        p.preference_skew = 1.0;
        p.distinct_preferences = Some(0);
        assert_eq!(p.validate(), Err(ProfileError::EmptyPreferencePool));
    }

    #[test]
    fn scaling_preserves_the_preference_pool_knob() {
        let p = DatasetProfile::movie()
            .with_distinct_preferences(100, 1.3)
            .scaled(0.1);
        assert_eq!(p.distinct_preferences, Some(10));
        assert_eq!(p.preference_skew, 1.3);
    }
}
