//! # pm-datagen
//!
//! Synthetic dataset simulators standing in for the two real datasets of the
//! paper's evaluation (Sec. 8.1): a *movie* dataset (Netflix ratings joined
//! with IMDB attributes) and a *publication* dataset (ACM DL metadata).
//! Neither raw dataset is redistributable, so this crate generates synthetic
//! data with the same structure and — crucially — derives each user's
//! per-attribute strict partial orders with exactly the rule the paper uses:
//! value `a` is preferred to value `b` iff the user's (average-rating, count)
//! statistics for `a` Pareto-dominate those for `b`.
//!
//! Users are grouped into latent *taste archetypes* so that subsets of users
//! share many preference tuples, which is the property the paper's
//! FilterThenVerify family exploits (and which real rating data exhibits).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod profile;
pub mod zipf;

pub use dataset::{Dataset, DatasetBuilder};
pub use profile::{AttributeSpec, DatasetProfile, ProfileError};
pub use zipf::ZipfSampler;
