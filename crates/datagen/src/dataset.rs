//! Dataset generation: objects plus per-user preference relations derived
//! from simulated interaction histories, following the derivation rule of
//! Sec. 8.1 of the paper.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pm_model::{AttrId, Attribute, Domain, Object, ObjectId, ObjectStream, Schema, ValueId};
use pm_porder::{Preference, Relation};

use crate::profile::{DatasetProfile, ProfileError};
use crate::zipf::ZipfSampler;

/// A fully materialised simulated dataset: schema, objects and one
/// preference (a strict partial order per attribute) per user.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Name of the profile that produced this dataset.
    pub profile_name: String,
    /// The attribute schema.
    pub schema: Schema,
    /// The base objects, ids `0..num_objects`.
    pub objects: Vec<Object>,
    /// Per-user preferences, indexed by user id.
    pub preferences: Vec<Preference>,
}

impl Dataset {
    /// Generates a dataset from `profile` with a deterministic `seed`.
    ///
    /// # Panics
    /// Panics on an invalid profile; use [`Dataset::try_generate`] to get
    /// the [`ProfileError`] instead.
    pub fn generate(profile: &DatasetProfile, seed: u64) -> Self {
        DatasetBuilder::new(profile.clone()).seed(seed).build()
    }

    /// Generates a dataset, rejecting invalid profiles (zero users, empty
    /// archetype sets, zero-arity schemas, empty domains) with a clean
    /// error instead of panicking deep inside the samplers.
    pub fn try_generate(profile: &DatasetProfile, seed: u64) -> Result<Self, ProfileError> {
        DatasetBuilder::new(profile.clone()).seed(seed).try_build()
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.preferences.len()
    }

    /// Number of base objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Dimensionality (number of attributes).
    pub fn dimensions(&self) -> usize {
        self.schema.arity()
    }

    /// A stream that repeats the base objects until `target_len` arrivals,
    /// as the paper does to build its 1M-object streams.
    pub fn stream(&self, target_len: usize) -> ObjectStream {
        ObjectStream::with_target_len(self.objects.clone(), target_len)
    }

    /// A copy of the dataset restricted to its first `d` attributes
    /// (used by the dimensionality sweeps of Figs. 6/7/10/11).
    pub fn project(&self, d: usize) -> Dataset {
        let d = d.clamp(1, self.schema.arity());
        Dataset {
            profile_name: self.profile_name.clone(),
            schema: self.schema.project(d),
            objects: self.objects.iter().map(|o| o.project(d)).collect(),
            preferences: self.preferences.iter().map(|p| p.project(d)).collect(),
        }
    }

    /// Average number of preference tuples per user (over all attributes);
    /// a quick sanity metric for generated preferences.
    pub fn mean_preference_size(&self) -> f64 {
        if self.preferences.is_empty() {
            return 0.0;
        }
        let total: usize = self.preferences.iter().map(Preference::total_pairs).sum();
        total as f64 / self.preferences.len() as f64
    }
}

/// Configurable generator for [`Dataset`]s.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    profile: DatasetProfile,
    seed: u64,
}

impl DatasetBuilder {
    /// Creates a builder for `profile` with the default seed.
    pub fn new(profile: DatasetProfile) -> Self {
        Self { profile, seed: 42 }
    }

    /// Sets the RNG seed (generation is fully deterministic given the seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    ///
    /// # Panics
    /// Panics on an invalid profile; see [`DatasetBuilder::try_build`].
    pub fn build(&self) -> Dataset {
        self.try_build().expect("invalid dataset profile")
    }

    /// Generates the dataset, validating the profile first
    /// ([`DatasetProfile::validate`]).
    pub fn try_build(&self) -> Result<Dataset, ProfileError> {
        let profile = &self.profile;
        profile.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Schema with anonymous interned domains.
        let schema = Schema::from_attributes(profile.attributes.iter().map(|spec| {
            Attribute::with_domain(spec.name.clone(), Domain::anonymous(spec.domain_size))
        }));

        // Objects: one Zipf-popular value per attribute.
        let value_samplers: Vec<ZipfSampler> = profile
            .attributes
            .iter()
            .map(|spec| ZipfSampler::new(spec.domain_size, spec.popularity_skew))
            .collect();
        let objects: Vec<Object> = (0..profile.num_objects)
            .map(|i| {
                let values = value_samplers
                    .iter()
                    .map(|s| ValueId::from(s.sample(&mut rng)))
                    .collect();
                Object::new(ObjectId::from(i), values)
            })
            .collect();

        // Archetype affinities: archetype × attribute × value → score in [1, 5].
        // Each score blends a global popularity component (popular values —
        // the low value ids under the Zipf samplers — are liked by everyone)
        // with an archetype-specific taste component, governed by
        // `popularity_bias`. The shared component is what gives different
        // users common preference tuples.
        let bias = profile.popularity_bias.clamp(0.0, 1.0);
        let affinities: Vec<Vec<Vec<f64>>> = (0..profile.num_archetypes.max(1))
            .map(|_| {
                profile
                    .attributes
                    .iter()
                    .map(|spec| {
                        (0..spec.domain_size)
                            .map(|value| {
                                let rank = value as f64 / spec.domain_size.max(1) as f64;
                                let popularity = 5.0 - 4.0 * rank;
                                let taste = rng.gen_range(1.0..=5.0);
                                bias * popularity + (1.0 - bias) * taste
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();

        // Object popularity for interaction sampling.
        let object_sampler = ZipfSampler::new(profile.num_objects, 1.0);

        let derive = |user: usize, rng: &mut StdRng| {
            let archetype = &affinities[user % affinities.len()];
            let interactions =
                Self::sample_interactions(profile, &objects, archetype, &object_sampler, rng);
            Self::derive_preference(profile, &objects, archetype, &interactions, rng)
        };
        let preferences: Vec<Preference> = match profile.distinct_preferences {
            // Shared-preference pool: derive at most `k` prototypes through
            // the normal pipeline, then Zipf-assign one to each user — the
            // distinct-preference count stays bounded by `k` however large
            // the population grows.
            Some(k) => {
                let pool: Vec<Preference> = (0..k).map(|i| derive(i, &mut rng)).collect();
                let pool_sampler = ZipfSampler::new(k, profile.preference_skew);
                (0..profile.num_users)
                    .map(|_| pool[pool_sampler.sample(&mut rng)].clone())
                    .collect()
            }
            None => (0..profile.num_users)
                .map(|user| derive(user, &mut rng))
                .collect(),
        };

        Ok(Dataset {
            profile_name: profile.name.clone(),
            schema,
            objects,
            preferences,
        })
    }

    /// Samples the set of objects a user has interacted with.
    ///
    /// Selection is biased both by global object popularity (Zipf) and by
    /// the user's own taste (people mostly watch / cite what they expect to
    /// like), which makes a value's interaction count correlate with its
    /// rating — the same correlation present in real rating data and the
    /// reason the derived 2-D-dominance orders are reasonably dense.
    fn sample_interactions(
        profile: &DatasetProfile,
        objects: &[Object],
        archetype: &[Vec<f64>],
        sampler: &ZipfSampler,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let want = profile.interactions_per_user.min(profile.num_objects);
        let arity = profile.attributes.len();
        let mut chosen: HashSet<usize> = HashSet::with_capacity(want);
        // Popular objects first; cap the number of attempts so degenerate
        // profiles (tiny object counts) still terminate.
        let max_attempts = want * 40 + 16;
        let mut attempts = 0;
        while chosen.len() < want && attempts < max_attempts {
            attempts += 1;
            let candidate = sampler.sample(rng);
            let object = &objects[candidate];
            let mut affinity = 0.0;
            for attr in 0..arity {
                affinity += archetype[attr][object.value(AttrId::from(attr)).index()];
            }
            let appeal = (affinity / (5.0 * arity as f64)).clamp(0.05, 1.0);
            if rng.gen_bool(appeal) {
                chosen.insert(candidate);
            }
        }
        let mut fallback = 0;
        while chosen.len() < want {
            chosen.insert(fallback);
            fallback += 1;
        }
        // Deterministic order: the later noise draws are consumed per
        // interaction, so the iteration order must not depend on the hash
        // seed of the set.
        let mut ordered: Vec<usize> = chosen.into_iter().collect();
        ordered.sort_unstable();
        ordered
    }

    /// Derives one user's preference from their interaction history using
    /// the paper's rule: per attribute, per value, compute the average
    /// rating and interaction count, then keep the 2-D dominance pairs.
    fn derive_preference(
        profile: &DatasetProfile,
        objects: &[Object],
        archetype: &[Vec<f64>],
        interactions: &[usize],
        rng: &mut StdRng,
    ) -> Preference {
        let arity = profile.attributes.len();
        let mut stats: Vec<HashMap<ValueId, (f64, f64)>> = vec![HashMap::new(); arity];
        for &obj_idx in interactions {
            let object = &objects[obj_idx];
            // The user's rating of this object: mean archetype affinity of
            // its attribute values, plus occasional per-user noise.
            let mut affinity = 0.0;
            for attr in 0..arity {
                affinity += archetype[attr][object.value(AttrId::from(attr)).index()];
            }
            let mut rating = affinity / arity as f64;
            if rng.gen_bool(profile.rating_noise) {
                rating += if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            }
            let rating = rating.clamp(0.0, 5.0);
            for (attr, per_value) in stats.iter_mut().enumerate() {
                let value = object.value(AttrId::from(attr));
                let entry = per_value.entry(value).or_insert((0.0, 0.0));
                entry.0 += rating;
                entry.1 += 1.0;
            }
        }
        let relations: Vec<Relation> = stats
            .into_iter()
            .map(|per_value| {
                let averaged: HashMap<ValueId, (f64, f64)> = per_value
                    .into_iter()
                    .map(|(v, (sum, count))| (v, (sum / count, count)))
                    .collect();
                Relation::from_dominance_stats(&averaged)
            })
            .collect();
        Preference::from_relations(relations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> DatasetProfile {
        DatasetProfile::movie()
            .scaled(0.1)
            .with_users(12)
            .with_objects(150)
            .with_interactions(40)
    }

    #[test]
    fn generation_is_deterministic() {
        let profile = tiny_profile();
        let a = Dataset::generate(&profile, 7);
        let b = Dataset::generate(&profile, 7);
        assert_eq!(a.objects, b.objects);
        assert_eq!(a.preferences.len(), b.preferences.len());
        for (pa, pb) in a.preferences.iter().zip(&b.preferences) {
            assert_eq!(pa.total_pairs(), pb.total_pairs());
        }
    }

    #[test]
    fn different_seeds_give_different_data() {
        let profile = tiny_profile();
        let a = Dataset::generate(&profile, 1);
        let b = Dataset::generate(&profile, 2);
        assert_ne!(a.objects, b.objects);
    }

    #[test]
    fn sizes_match_profile() {
        let profile = tiny_profile();
        let d = Dataset::generate(&profile, 3);
        assert_eq!(d.num_objects(), profile.num_objects);
        assert_eq!(d.num_users(), profile.num_users);
        assert_eq!(d.dimensions(), profile.dimensions());
        assert_eq!(d.profile_name, "movie");
    }

    #[test]
    fn preferences_are_valid_strict_partial_orders() {
        let d = Dataset::generate(&tiny_profile(), 11);
        for pref in &d.preferences {
            for (_, rel) in pref.relations() {
                rel.validate()
                    .expect("generated relation must be a strict partial order");
            }
        }
        assert!(d.mean_preference_size() > 0.0);
    }

    #[test]
    fn users_in_same_archetype_share_preferences() {
        // With one archetype and no noise, all users rate objects they have
        // in common identically, so their relations must overlap heavily.
        let mut profile = tiny_profile();
        profile.num_archetypes = 1;
        profile.rating_noise = 0.0;
        let d = Dataset::generate(&profile, 5);
        let a = &d.preferences[0];
        let b = &d.preferences[1];
        let mut shared = 0usize;
        for (attr, rel) in a.relations() {
            shared += rel.intersection_size(b.relation(attr));
        }
        assert!(shared > 0, "archetype-mates must share preference tuples");
    }

    #[test]
    fn object_values_lie_in_domains() {
        let d = Dataset::generate(&tiny_profile(), 13);
        for o in &d.objects {
            for (attr, spec) in d.schema.attributes() {
                assert!(o.value(attr).index() < spec.domain.len());
            }
        }
    }

    #[test]
    fn projection_reduces_dimensions_everywhere() {
        let d = Dataset::generate(&tiny_profile(), 17);
        let p = d.project(2);
        assert_eq!(p.dimensions(), 2);
        assert!(p.objects.iter().all(|o| o.arity() == 2));
        assert!(p.preferences.iter().all(|pref| pref.arity() == 2));
    }

    #[test]
    fn stream_reaches_target_length() {
        let d = Dataset::generate(&tiny_profile(), 19);
        let s = d.stream(500);
        assert!(s.len() >= 500);
        assert_eq!(s.base_len(), d.num_objects());
    }

    #[test]
    fn invalid_profiles_fail_cleanly_not_by_panic() {
        use crate::profile::ProfileError;
        let mut p = tiny_profile();
        p.num_users = 0;
        assert_eq!(
            Dataset::try_generate(&p, 1).err(),
            Some(ProfileError::NoUsers)
        );
        let mut p = tiny_profile();
        p.num_archetypes = 0;
        assert_eq!(
            Dataset::try_generate(&p, 1).err(),
            Some(ProfileError::NoArchetypes)
        );
        let mut p = tiny_profile();
        p.attributes.clear();
        assert_eq!(
            Dataset::try_generate(&p, 1).err(),
            Some(ProfileError::NoAttributes)
        );
        let mut p = tiny_profile();
        p.attributes[0].domain_size = 0;
        assert!(matches!(
            Dataset::try_generate(&p, 1),
            Err(ProfileError::EmptyDomain(_))
        ));
    }

    #[test]
    fn preference_pool_bounds_distinct_preferences() {
        use std::collections::HashSet;
        let profile = tiny_profile()
            .with_users(400)
            .with_distinct_preferences(6, 1.2);
        let d = Dataset::try_generate(&profile, 29).unwrap();
        assert_eq!(d.num_users(), 400);
        let distinct: HashSet<_> = d.preferences.iter().map(|p| p.fingerprint()).collect();
        assert!(
            distinct.len() <= 6,
            "pool of 6 prototypes, saw {} distinct",
            distinct.len()
        );
        assert!(distinct.len() > 1, "a skewed pool still uses several slots");
        // Zipf assignment: the most popular prototype covers a large share
        // of the population.
        let mut counts: HashMap<pm_porder::Fingerprint, usize> = HashMap::new();
        for p in &d.preferences {
            *counts.entry(p.fingerprint()).or_default() += 1;
        }
        let top = counts.values().copied().max().unwrap();
        assert!(top * 4 > d.num_users(), "head prototype too rare: {top}");
    }

    #[test]
    fn preference_pool_is_deterministic() {
        let profile = tiny_profile()
            .with_users(50)
            .with_distinct_preferences(4, 1.0);
        let a = Dataset::try_generate(&profile, 31).unwrap();
        let b = Dataset::try_generate(&profile, 31).unwrap();
        for (pa, pb) in a.preferences.iter().zip(&b.preferences) {
            assert_eq!(pa.fingerprint(), pb.fingerprint());
        }
    }

    #[test]
    fn publication_profile_generates_too() {
        let profile = DatasetProfile::publication()
            .scaled(0.1)
            .with_users(8)
            .with_objects(100)
            .with_interactions(30);
        let d = Dataset::generate(&profile, 23);
        assert_eq!(d.profile_name, "publication");
        assert_eq!(d.num_users(), 8);
        assert!(d.mean_preference_size() > 0.0);
    }
}
