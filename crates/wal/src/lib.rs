//! # pm-wal
//!
//! Durability for the sharded frontier engine: an append-only write-ahead
//! log of the mutation stream plus point-in-time snapshots of exactly the
//! state PR 5 proved minimal (compact history groups with id multiplicity,
//! the [`pm_porder::PreferenceUniverse`] behind them, memberships and the
//! monotonic counters).
//!
//! ## Log format
//!
//! The log is a sequence of segment files `wal-<base>.pmwal`, rotated by
//! size. Each segment starts with a 16-byte header — the magic `PMWAL001`
//! followed by the little-endian LSN of its first record — and then holds
//! records framed as `[u32 len][u32 crc32(payload)][payload]` (both
//! little-endian). LSNs are record ordinals, not byte offsets: record `n`
//! is the `n`-th mutation applied by the engine since genesis, which is
//! what makes "snapshot covers records `< lsn`, replay starts at `lsn`"
//! exact.
//!
//! Reading stops at the first ill-formed frame (short header, absurd
//! length, CRC mismatch, short payload): everything before it is the valid
//! prefix, everything after — including any later segment — is discarded,
//! and [`Wal::open`] truncates the torn bytes so the writer never appends
//! after garbage.
//!
//! ## Fsync policy
//!
//! [`SyncPolicy`] mirrors the server's `--wal-sync` flag: `always` fsyncs
//! every record (no acknowledged mutation is ever lost), `batch`
//! group-commits (fsync after ~256 KiB of unsynced records, on segment
//! rotation, on snapshot and on shutdown — bounded loss, near-zero
//! overhead), `off` never fsyncs (the OS page cache decides).
//!
//! ## Snapshots
//!
//! A snapshot file `snapshot-<lsn>.pmsnap` holds one encoded
//! [`EngineState`] behind a magic, its covered LSN and a CRC32. The
//! current magic is `PMSNAP02`: the payload carries one dedup table of
//! distinct preferences (each behind its stable
//! [`pm_porder::Fingerprint`]) and references it by index from every
//! membership and observed-history occurrence, so snapshot size scales
//! with *distinct* preferences rather than population size. Legacy
//! `PMSNAP01` files (every preference spelled out in place) are still
//! read on recovery. Snapshots are written to a temporary file, fsynced
//! and renamed into place, so a crash mid-snapshot leaves the previous
//! one intact; loading tries newest-first and falls back across corrupt
//! files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod log;
pub mod record;
pub mod snapshot;

pub use crc::crc32;
pub use log::{scan, ScanOutcome, SyncPolicy, TornTail, Wal, WalStats};
pub use record::{
    encode_ingest_batch, encode_register, encode_unregister, encode_update, DecodeError,
    EngineState, WalRecord,
};
pub use snapshot::{load_latest_snapshot, write_snapshot, write_snapshot_v1, LoadedSnapshot};
