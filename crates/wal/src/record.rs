//! Binary encoding of WAL records and engine snapshots.
//!
//! A deliberately boring little-endian format: no self-description, no
//! varints, no external serialization crate (the build is offline). Every
//! encoded blob travels behind a CRC32, so decoding can assume structural
//! sanity and fail loudly ([`DecodeError`]) on anything that still
//! disagrees — a decode error after a passing CRC means a format bug, not
//! bit rot.

use std::collections::HashMap;
use std::fmt;

use pm_core::{HistoryState, MonitorState};
use pm_model::{Object, ObjectId, UserId, ValueId};
use pm_porder::{Fingerprint, Preference};

/// One logged engine mutation. The serving path's only mutations are
/// object ingest and user churn — `EXPIRE` is a read-only wire verb
/// (window expiry is driven by arrivals) and is never logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// One ingested batch, with the server-assigned object ids (ids double
    /// as arrival timestamps, so replay re-mints the exact same stream).
    IngestBatch {
        /// The batch objects in submission order.
        objects: Vec<Object>,
    },
    /// A user registered mid-stream.
    Register {
        /// The engine-global user id the server assigned.
        user: UserId,
        /// The registered preference.
        preference: Preference,
    },
    /// A user's preference replaced in place.
    Update {
        /// The engine-global user id.
        user: UserId,
        /// The replacement preference.
        preference: Preference,
    },
    /// A user unregistered (engine-side swap-remove).
    Unregister {
        /// The engine-global user id.
        user: UserId,
    },
}

const TAG_INGEST: u8 = 1;
const TAG_REGISTER: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_UNREGISTER: u8 = 4;

/// Why a WAL record or snapshot payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the announced structure did.
    UnexpectedEnd,
    /// An unknown record/structure tag.
    BadTag(u8),
    /// A preference pair violated the strict-order invariants (reflexive
    /// or cyclic) — impossible for payloads we encoded ourselves.
    BadPreference(String),
    /// Trailing bytes after a complete decode.
    TrailingBytes(usize),
    /// A non-UTF-8 string field.
    BadString,
    /// A preference-table index past the table's end (v2 snapshots).
    BadIndex(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "payload truncated"),
            DecodeError::BadTag(tag) => write!(f, "unknown tag {tag}"),
            DecodeError::BadPreference(err) => write!(f, "invalid preference: {err}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            DecodeError::BadString => write!(f, "non-UTF-8 string"),
            DecodeError::BadIndex(i) => write!(f, "preference index {i} out of table range"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Little-endian byte writer.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn object(&mut self, o: &Object) {
        self.u64(o.id().raw());
        self.usize(o.values().len());
        for v in o.values() {
            self.u32(v.raw());
        }
    }
    fn preference(&mut self, p: &Preference) {
        self.usize(p.arity());
        for (_, relation) in p.relations() {
            let pairs: Vec<_> = relation.pairs().collect();
            self.usize(pairs.len());
            for (x, y) in pairs {
                self.u32(x.raw());
                self.u32(y.raw());
            }
        }
    }
}

/// Little-endian byte reader.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::UnexpectedEnd)?;
        if end > self.buf.len() {
            return Err(DecodeError::UnexpectedEnd);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::UnexpectedEnd)
    }
    /// A length about to drive a `Vec` preallocation: bounded by the bytes
    /// actually remaining, so a corrupt length cannot balloon memory.
    fn len_of(&mut self, per_item: usize) -> Result<usize, DecodeError> {
        let n = self.usize()?;
        if n.saturating_mul(per_item.max(1)) > self.buf.len().saturating_sub(self.pos) {
            return Err(DecodeError::UnexpectedEnd);
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.len_of(1)?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| DecodeError::BadString)
    }
    fn object(&mut self) -> Result<Object, DecodeError> {
        let id = ObjectId::new(self.u64()?);
        let n = self.len_of(4)?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(ValueId::new(self.u32()?));
        }
        Ok(Object::new(id, values))
    }
    fn preference(&mut self) -> Result<Preference, DecodeError> {
        let arity = self.len_of(8)?;
        let mut p = Preference::new(arity);
        for attr in 0..arity {
            let pairs = self.len_of(8)?;
            for _ in 0..pairs {
                let x = ValueId::new(self.u32()?);
                let y = ValueId::new(self.u32()?);
                // Pairs of a transitively closed strict order re-insert
                // cleanly in any order; an error means the payload was
                // not produced by our encoder.
                p.relation_mut(pm_model::AttrId::from(attr))
                    .insert(x, y)
                    .map_err(|e| DecodeError::BadPreference(e.to_string()))?;
            }
        }
        Ok(p)
    }
    fn finish(self) -> Result<(), DecodeError> {
        let rest = self.buf.len() - self.pos;
        if rest != 0 {
            return Err(DecodeError::TrailingBytes(rest));
        }
        Ok(())
    }
}

/// Encodes an ingest-batch payload straight from a borrowed slice: the
/// engine logs every batch on the hot path and must not deep-clone it into
/// an owned [`WalRecord`] first.
pub fn encode_ingest_batch(objects: &[Object]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u8(TAG_INGEST);
    e.usize(objects.len());
    for o in objects {
        e.object(o);
    }
    e.buf
}

/// Encodes a register payload from borrowed parts.
pub fn encode_register(user: UserId, preference: &Preference) -> Vec<u8> {
    let mut e = Enc::default();
    e.u8(TAG_REGISTER);
    e.u32(user.raw());
    e.preference(preference);
    e.buf
}

/// Encodes an update payload from borrowed parts.
pub fn encode_update(user: UserId, preference: &Preference) -> Vec<u8> {
    let mut e = Enc::default();
    e.u8(TAG_UPDATE);
    e.u32(user.raw());
    e.preference(preference);
    e.buf
}

/// Encodes an unregister payload.
pub fn encode_unregister(user: UserId) -> Vec<u8> {
    let mut e = Enc::default();
    e.u8(TAG_UNREGISTER);
    e.u32(user.raw());
    e.buf
}

impl WalRecord {
    /// Encodes the record payload (framing and CRC are the log's job).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::IngestBatch { objects } => encode_ingest_batch(objects),
            WalRecord::Register { user, preference } => encode_register(*user, preference),
            WalRecord::Update { user, preference } => encode_update(*user, preference),
            WalRecord::Unregister { user } => encode_unregister(*user),
        }
    }

    /// Decodes one record payload (inverse of [`WalRecord::encode`]).
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Dec::new(payload);
        let record = match d.u8()? {
            TAG_INGEST => {
                let n = d.len_of(12)?;
                let mut objects = Vec::with_capacity(n);
                for _ in 0..n {
                    objects.push(d.object()?);
                }
                WalRecord::IngestBatch { objects }
            }
            TAG_REGISTER => WalRecord::Register {
                user: UserId::new(d.u32()?),
                preference: d.preference()?,
            },
            TAG_UPDATE => WalRecord::Update {
                user: UserId::new(d.u32()?),
                preference: d.preference()?,
            },
            TAG_UNREGISTER => WalRecord::Unregister {
                user: UserId::new(d.u32()?),
            },
            tag => return Err(DecodeError::BadTag(tag)),
        };
        d.finish()?;
        Ok(record)
    }
}

/// A point-in-time image of everything the engine and its serving layer
/// must carry across a restart — exactly the PR-5 minimal state per shard
/// ([`MonitorState`]: compact history groups with id multiplicity plus the
/// observed-preference universe, or the sliding window), the flattened
/// per-shard memberships in registration order, the monotonic counters,
/// and the server's ingest bookkeeping (`next_id` and the QUERY cache).
#[derive(Debug, Clone, Default)]
pub struct EngineState {
    /// The backend spec string the engine was built with (recovery refuses
    /// to restore a snapshot into a differently-configured engine).
    pub backend: String,
    /// Shard count at snapshot time (must match on recovery — users are
    /// hash-partitioned by shard count).
    pub shards: u32,
    /// Object/preference arity.
    pub arity: u32,
    /// The snapshot covers WAL records `< last_lsn`; replay starts here.
    pub last_lsn: u64,
    /// The server's next object id to assign.
    pub next_id: u64,
    /// Engine lifetime counters.
    pub ingested: u64,
    /// Lifetime successful REGISTER count.
    pub registrations: u64,
    /// Lifetime successful UNREGISTER count.
    pub unregistrations: u64,
    /// Lifetime successful UPDATE count.
    pub updates: u64,
    /// Per-shard memberships in shard-local registration order: replaying
    /// `register` in this order reproduces each shard's local user ids.
    pub members: Vec<Vec<(UserId, Preference)>>,
    /// Per-shard monitor state (history or window, plus work counters).
    pub monitors: Vec<MonitorState>,
    /// The server's QUERY cache: retained object ids, oldest first.
    pub query_order: Vec<ObjectId>,
    /// The server's QUERY cache: target users per retained object.
    pub query_targets: Vec<(ObjectId, Vec<UserId>)>,
}

fn enc_stats(e: &mut Enc, s: &pm_core::MonitorStats) {
    e.u64(s.arrivals);
    e.u64(s.expirations);
    e.u64(s.comparisons);
    e.u64(s.notifications);
}

fn dec_stats(d: &mut Dec<'_>) -> Result<pm_core::MonitorStats, DecodeError> {
    let mut s = pm_core::MonitorStats::new();
    s.arrivals = d.u64()?;
    s.expirations = d.u64()?;
    s.comparisons = d.u64()?;
    s.notifications = d.u64()?;
    Ok(s)
}

fn enc_monitor(e: &mut Enc, m: &MonitorState) {
    match &m.history {
        Some(h) => {
            e.u8(1);
            e.usize(h.observed.len());
            for p in &h.observed {
                e.preference(p);
            }
            e.usize(h.objects.len());
            for o in &h.objects {
                e.object(o);
            }
            e.u64(h.pending);
            e.u64(h.evicted);
        }
        None => e.u8(0),
    }
    match &m.window {
        Some(objects) => {
            e.u8(1);
            e.usize(objects.len());
            for o in objects {
                e.object(o);
            }
        }
        None => e.u8(0),
    }
    enc_stats(e, &m.stats);
}

fn dec_monitor(d: &mut Dec<'_>) -> Result<MonitorState, DecodeError> {
    let history = match d.u8()? {
        0 => None,
        1 => {
            let np = d.len_of(8)?;
            let mut observed = Vec::with_capacity(np);
            for _ in 0..np {
                observed.push(d.preference()?);
            }
            let no = d.len_of(12)?;
            let mut objects = Vec::with_capacity(no);
            for _ in 0..no {
                objects.push(d.object()?);
            }
            Some(HistoryState {
                observed,
                objects,
                pending: d.u64()?,
                evicted: d.u64()?,
            })
        }
        tag => return Err(DecodeError::BadTag(tag)),
    };
    let window = match d.u8()? {
        0 => None,
        1 => {
            let n = d.len_of(12)?;
            let mut objects = Vec::with_capacity(n);
            for _ in 0..n {
                objects.push(d.object()?);
            }
            Some(objects)
        }
        tag => return Err(DecodeError::BadTag(tag)),
    };
    Ok(MonitorState {
        history,
        window,
        stats: dec_stats(d)?,
    })
}

/// The v2 snapshot's preference dedup table, built while encoding: every
/// preference occurrence (shard memberships and observed-history sets) is
/// replaced by a `u32` index into one table of distinct preferences keyed
/// by [`Fingerprint`]. With a shared-preference population the table stays
/// small while v1 re-encoded each user's preference in full.
#[derive(Default)]
struct PrefTable<'a> {
    entries: Vec<(Fingerprint, &'a Preference)>,
    index: HashMap<Fingerprint, u32>,
}

impl<'a> PrefTable<'a> {
    fn index_of(&mut self, preference: &'a Preference) -> u32 {
        let fingerprint = preference.fingerprint();
        if let Some(&i) = self.index.get(&fingerprint) {
            // Guard against fingerprint collisions with a full equality
            // check; a colliding pair gets two table entries (decode
            // resolves by index, never by fingerprint, so duplicates in
            // the table are harmless).
            if self.entries[i as usize].1 == preference {
                return i;
            }
        }
        let i = u32::try_from(self.entries.len()).expect("preference table fits u32");
        self.entries.push((fingerprint, preference));
        self.index.entry(fingerprint).or_insert(i);
        i
    }
}

fn enc_monitor_v2<'a>(e: &mut Enc, table: &mut PrefTable<'a>, m: &'a MonitorState) {
    match &m.history {
        Some(h) => {
            e.u8(1);
            e.usize(h.observed.len());
            for p in &h.observed {
                e.u32(table.index_of(p));
            }
            e.usize(h.objects.len());
            for o in &h.objects {
                e.object(o);
            }
            e.u64(h.pending);
            e.u64(h.evicted);
        }
        None => e.u8(0),
    }
    match &m.window {
        Some(objects) => {
            e.u8(1);
            e.usize(objects.len());
            for o in objects {
                e.object(o);
            }
        }
        None => e.u8(0),
    }
    enc_stats(e, &m.stats);
}

fn dec_pref_index(d: &mut Dec<'_>, table: &[Preference]) -> Result<Preference, DecodeError> {
    let i = d.u32()?;
    table
        .get(i as usize)
        .cloned()
        .ok_or(DecodeError::BadIndex(i))
}

fn dec_monitor_v2(d: &mut Dec<'_>, table: &[Preference]) -> Result<MonitorState, DecodeError> {
    let history = match d.u8()? {
        0 => None,
        1 => {
            let np = d.len_of(4)?;
            let mut observed = Vec::with_capacity(np);
            for _ in 0..np {
                observed.push(dec_pref_index(d, table)?);
            }
            let no = d.len_of(12)?;
            let mut objects = Vec::with_capacity(no);
            for _ in 0..no {
                objects.push(d.object()?);
            }
            Some(HistoryState {
                observed,
                objects,
                pending: d.u64()?,
                evicted: d.u64()?,
            })
        }
        tag => return Err(DecodeError::BadTag(tag)),
    };
    let window = match d.u8()? {
        0 => None,
        1 => {
            let n = d.len_of(12)?;
            let mut objects = Vec::with_capacity(n);
            for _ in 0..n {
                objects.push(d.object()?);
            }
            Some(objects)
        }
        tag => return Err(DecodeError::BadTag(tag)),
    };
    Ok(MonitorState {
        history,
        window,
        stats: dec_stats(d)?,
    })
}

impl EngineState {
    /// Encodes the snapshot payload in the current (v2) format — behind the
    /// `PMSNAP02` magic — with one dedup table of distinct preferences and
    /// `u32` indices at every occurrence. The snapshot file adds magic, LSN
    /// and CRC around it.
    pub fn encode(&self) -> Vec<u8> {
        let mut table = PrefTable::default();
        let mut body = Enc::default();
        body.usize(self.members.len());
        for shard in &self.members {
            body.usize(shard.len());
            for (user, preference) in shard {
                body.u32(user.raw());
                body.u32(table.index_of(preference));
            }
        }
        body.usize(self.monitors.len());
        for m in &self.monitors {
            enc_monitor_v2(&mut body, &mut table, m);
        }
        body.usize(self.query_order.len());
        for id in &self.query_order {
            body.u64(id.raw());
        }
        body.usize(self.query_targets.len());
        for (id, users) in &self.query_targets {
            body.u64(id.raw());
            body.usize(users.len());
            for u in users {
                body.u32(u.raw());
            }
        }

        let mut e = Enc::default();
        e.str(&self.backend);
        e.u32(self.shards);
        e.u32(self.arity);
        e.u64(self.last_lsn);
        e.u64(self.next_id);
        e.u64(self.ingested);
        e.u64(self.registrations);
        e.u64(self.unregistrations);
        e.u64(self.updates);
        e.usize(table.entries.len());
        for (fingerprint, preference) in &table.entries {
            e.buf.extend_from_slice(&fingerprint.to_le_bytes());
            e.preference(preference);
        }
        e.buf.extend_from_slice(&body.buf);
        e.buf
    }

    /// Decodes a current-format (v2) snapshot payload (inverse of
    /// [`EngineState::encode`]). Every table entry's stored fingerprint is
    /// checked against the decoded preference, so a torn or hand-edited
    /// table fails loudly instead of silently merging users.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Dec::new(payload);
        let backend = d.str()?;
        let shards = d.u32()?;
        let arity = d.u32()?;
        let last_lsn = d.u64()?;
        let next_id = d.u64()?;
        let ingested = d.u64()?;
        let registrations = d.u64()?;
        let unregistrations = d.u64()?;
        let updates = d.u64()?;
        let ntable = d.len_of(16)?;
        let mut table = Vec::with_capacity(ntable);
        for _ in 0..ntable {
            let fingerprint = Fingerprint::from_le_bytes(d.take(16)?.try_into().unwrap());
            let preference = d.preference()?;
            if preference.fingerprint() != fingerprint {
                return Err(DecodeError::BadPreference(
                    "table fingerprint disagrees with its preference".into(),
                ));
            }
            table.push(preference);
        }
        let nshards = d.len_of(8)?;
        let mut members = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            let n = d.len_of(8)?;
            let mut shard = Vec::with_capacity(n);
            for _ in 0..n {
                let user = UserId::new(d.u32()?);
                shard.push((user, dec_pref_index(&mut d, &table)?));
            }
            members.push(shard);
        }
        let nmon = d.len_of(2)?;
        let mut monitors = Vec::with_capacity(nmon);
        for _ in 0..nmon {
            monitors.push(dec_monitor_v2(&mut d, &table)?);
        }
        let norder = d.len_of(8)?;
        let mut query_order = Vec::with_capacity(norder);
        for _ in 0..norder {
            query_order.push(ObjectId::new(d.u64()?));
        }
        let ntargets = d.len_of(8)?;
        let mut query_targets = Vec::with_capacity(ntargets);
        for _ in 0..ntargets {
            let id = ObjectId::new(d.u64()?);
            let n = d.len_of(4)?;
            let mut users = Vec::with_capacity(n);
            for _ in 0..n {
                users.push(UserId::new(d.u32()?));
            }
            query_targets.push((id, users));
        }
        let state = EngineState {
            backend,
            shards,
            arity,
            last_lsn,
            next_id,
            ingested,
            registrations,
            unregistrations,
            updates,
            members,
            monitors,
            query_order,
            query_targets,
        };
        d.finish()?;
        Ok(state)
    }

    /// Encodes the snapshot payload in the legacy (v1, `PMSNAP01`) format,
    /// with every preference spelled out in place. Kept so tooling and
    /// tests can produce pre-interning snapshots; recovery still reads
    /// them via [`EngineState::decode_v1`].
    pub fn encode_v1(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.str(&self.backend);
        e.u32(self.shards);
        e.u32(self.arity);
        e.u64(self.last_lsn);
        e.u64(self.next_id);
        e.u64(self.ingested);
        e.u64(self.registrations);
        e.u64(self.unregistrations);
        e.u64(self.updates);
        e.usize(self.members.len());
        for shard in &self.members {
            e.usize(shard.len());
            for (user, preference) in shard {
                e.u32(user.raw());
                e.preference(preference);
            }
        }
        e.usize(self.monitors.len());
        for m in &self.monitors {
            enc_monitor(&mut e, m);
        }
        e.usize(self.query_order.len());
        for id in &self.query_order {
            e.u64(id.raw());
        }
        e.usize(self.query_targets.len());
        for (id, users) in &self.query_targets {
            e.u64(id.raw());
            e.usize(users.len());
            for u in users {
                e.u32(u.raw());
            }
        }
        e.buf
    }

    /// Decodes a legacy (v1) snapshot payload (inverse of
    /// [`EngineState::encode_v1`]).
    pub fn decode_v1(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Dec::new(payload);
        let backend = d.str()?;
        let shards = d.u32()?;
        let arity = d.u32()?;
        let last_lsn = d.u64()?;
        let next_id = d.u64()?;
        let ingested = d.u64()?;
        let registrations = d.u64()?;
        let unregistrations = d.u64()?;
        let updates = d.u64()?;
        let nshards = d.len_of(8)?;
        let mut members = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            let n = d.len_of(8)?;
            let mut shard = Vec::with_capacity(n);
            for _ in 0..n {
                let user = UserId::new(d.u32()?);
                shard.push((user, d.preference()?));
            }
            members.push(shard);
        }
        let nmon = d.len_of(2)?;
        let mut monitors = Vec::with_capacity(nmon);
        for _ in 0..nmon {
            monitors.push(dec_monitor(&mut d)?);
        }
        let norder = d.len_of(8)?;
        let mut query_order = Vec::with_capacity(norder);
        for _ in 0..norder {
            query_order.push(ObjectId::new(d.u64()?));
        }
        let ntargets = d.len_of(8)?;
        let mut query_targets = Vec::with_capacity(ntargets);
        for _ in 0..ntargets {
            let id = ObjectId::new(d.u64()?);
            let n = d.len_of(4)?;
            let mut users = Vec::with_capacity(n);
            for _ in 0..n {
                users.push(UserId::new(d.u32()?));
            }
            query_targets.push((id, users));
        }
        let state = EngineState {
            backend,
            shards,
            arity,
            last_lsn,
            next_id,
            ingested,
            registrations,
            unregistrations,
            updates,
            members,
            monitors,
            query_order,
            query_targets,
        };
        d.finish()?;
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::AttrId;

    fn pref() -> Preference {
        let mut p = Preference::new(2);
        p.relation_mut(AttrId::new(0))
            .insert(ValueId::new(0), ValueId::new(1))
            .unwrap();
        p.relation_mut(AttrId::new(1))
            .insert(ValueId::new(2), ValueId::new(3))
            .unwrap();
        p
    }

    fn obj(id: u64, vals: &[u32]) -> Object {
        Object::new(
            ObjectId::new(id),
            vals.iter().map(|&v| ValueId::new(v)).collect(),
        )
    }

    #[test]
    fn wal_record_roundtrip() {
        let records = vec![
            WalRecord::IngestBatch {
                objects: vec![obj(7, &[1, 2]), obj(8, &[3, 4])],
            },
            WalRecord::Register {
                user: UserId::new(3),
                preference: pref(),
            },
            WalRecord::Update {
                user: UserId::new(3),
                preference: Preference::new(2),
            },
            WalRecord::Unregister {
                user: UserId::new(0),
            },
        ];
        for record in records {
            let bytes = record.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), record);
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let bytes = WalRecord::Register {
            user: UserId::new(1),
            preference: pref(),
        }
        .encode();
        assert!(WalRecord::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            WalRecord::decode(&extended),
            Err(DecodeError::TrailingBytes(1))
        );
        assert_eq!(WalRecord::decode(&[99]), Err(DecodeError::BadTag(99)));
    }

    #[test]
    fn corrupt_length_cannot_balloon_allocation() {
        // An IngestBatch claiming u64::MAX objects must fail fast instead
        // of preallocating.
        let mut bytes = vec![super::TAG_INGEST];
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(WalRecord::decode(&bytes), Err(DecodeError::UnexpectedEnd));
    }

    fn rich_state() -> EngineState {
        EngineState {
            backend: "ftv:0.4:compact".into(),
            shards: 2,
            arity: 2,
            last_lsn: 42,
            next_id: 1000,
            ingested: 999,
            registrations: 5,
            unregistrations: 2,
            updates: 1,
            members: vec![
                vec![(UserId::new(0), pref())],
                vec![
                    (UserId::new(1), Preference::new(2)),
                    (UserId::new(2), pref()),
                ],
            ],
            monitors: vec![
                MonitorState {
                    history: Some(HistoryState {
                        observed: vec![pref()],
                        objects: vec![obj(1, &[0, 2])],
                        pending: 17,
                        evicted: 3,
                    }),
                    window: None,
                    stats: {
                        let mut s = pm_core::MonitorStats::new();
                        s.arrivals = 999;
                        s.comparisons = 1234;
                        s
                    },
                },
                MonitorState {
                    history: None,
                    window: Some(vec![obj(2, &[1, 3])]),
                    stats: pm_core::MonitorStats::new(),
                },
            ],
            query_order: vec![ObjectId::new(1), ObjectId::new(2)],
            query_targets: vec![(ObjectId::new(1), vec![UserId::new(0), UserId::new(2)])],
        }
    }

    fn assert_state_eq(decoded: &EngineState, state: &EngineState) {
        assert_eq!(decoded.backend, state.backend);
        assert_eq!(decoded.shards, state.shards);
        assert_eq!(decoded.last_lsn, state.last_lsn);
        assert_eq!(decoded.next_id, state.next_id);
        assert_eq!(decoded.members, state.members);
        assert_eq!(decoded.query_order, state.query_order);
        assert_eq!(decoded.query_targets, state.query_targets);
        assert_eq!(decoded.monitors.len(), 2);
        assert_eq!(decoded.monitors[0].history, state.monitors[0].history,);
        assert_eq!(decoded.monitors[0].stats.comparisons, 1234);
        assert_eq!(decoded.monitors[1].window, state.monitors[1].window);
    }

    #[test]
    fn engine_state_roundtrip() {
        let state = rich_state();
        let decoded = EngineState::decode(&state.encode()).unwrap();
        assert_state_eq(&decoded, &state);
    }

    #[test]
    fn engine_state_v1_roundtrip() {
        let state = rich_state();
        let decoded = EngineState::decode_v1(&state.encode_v1()).unwrap();
        assert_state_eq(&decoded, &state);
    }

    #[test]
    fn v2_snapshot_scales_with_distinct_preferences() {
        // 200 users sharing one preference: the v2 payload should carry the
        // preference once (plus 4-byte indices), while v1 spells it out per
        // user. The exact ratio is format detail; "several times smaller"
        // is the contract.
        let members: Vec<(UserId, Preference)> =
            (0..200).map(|i| (UserId::new(i), pref())).collect();
        let state = EngineState {
            backend: "baseline".into(),
            shards: 1,
            arity: 2,
            members: vec![members],
            ..EngineState::default()
        };
        let v1 = state.encode_v1();
        let v2 = state.encode();
        assert!(
            v2.len() * 4 < v1.len(),
            "v2 ({} bytes) should dedup what v1 ({} bytes) repeats",
            v2.len(),
            v1.len()
        );
        let decoded = EngineState::decode(&v2).unwrap();
        assert_eq!(decoded.members, state.members);
    }

    #[test]
    fn v2_table_fingerprint_mismatch_is_rejected() {
        let state = EngineState {
            backend: "baseline".into(),
            shards: 1,
            arity: 2,
            members: vec![vec![(UserId::new(0), pref())]],
            ..EngineState::default()
        };
        let bytes = state.encode();
        let fp = pref().fingerprint().to_le_bytes();
        let pos = bytes
            .windows(16)
            .position(|w| w == fp)
            .expect("table entry carries the fingerprint");
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x01;
        assert!(matches!(
            EngineState::decode(&corrupt),
            Err(DecodeError::BadPreference(_))
        ));
    }

    #[test]
    fn v2_out_of_range_index_is_rejected() {
        let state = EngineState {
            backend: "baseline".into(),
            shards: 1,
            arity: 2,
            members: vec![vec![(UserId::new(0), pref())]],
            ..EngineState::default()
        };
        let mut bytes = state.encode();
        // With no monitors and empty query caches the tail is fixed: three
        // empty-section counts (8 bytes each), preceded by the sole
        // member's 4-byte preference index.
        let n = bytes.len();
        bytes[n - 28..n - 24].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            EngineState::decode(&bytes),
            Err(DecodeError::BadIndex(7))
        ));
    }

    #[test]
    fn v2_single_byte_corruption_never_panics() {
        let bytes = rich_state().encode();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xff;
            let _ = EngineState::decode(&flipped);
        }
    }
}
