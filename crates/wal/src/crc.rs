//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over record and
//! snapshot payloads. Hand-rolled table implementation — the container
//! build is offline, so no checksum crate is assumed.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC32 (IEEE) checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let a = crc32(b"pareto-monitor");
        let b = crc32(b"pareto-monitos");
        assert_ne!(a, b);
    }
}
