//! The append-only segmented log: writer with fsync policy and size-based
//! rotation, and a scanning reader that stops at the first corruption.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::crc::crc32;
use crate::record::WalRecord;

/// Magic leading every segment file.
pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"PMWAL001";
/// Segment header: magic + little-endian base LSN.
const SEGMENT_HEADER: u64 = 16;
/// Per-record framing: `[u32 len][u32 crc]`.
const FRAME_HEADER: u64 = 8;
/// Rotate to a fresh segment once the current one exceeds this.
const SEGMENT_BYTES: u64 = 8 * 1024 * 1024;
/// `batch` policy: group-commit fsync once this many unsynced bytes pile up.
const BATCH_SYNC_BYTES: u64 = 256 * 1024;
/// Sanity bound on a single record payload; larger lengths are treated as
/// corruption (the engine's own frames are far smaller).
const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// When the log fsyncs, mirroring the server's `--wal-sync` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every record: an acknowledged mutation is never lost.
    Always,
    /// Group commit: fsync after ~256 KiB of unsynced records, on segment
    /// rotation and on shutdown. Bounded loss, near-zero overhead.
    Batch,
    /// Never fsync; the OS page cache decides when bytes hit disk.
    Off,
}

impl SyncPolicy {
    /// Parses the `--wal-sync` flag value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "batch" => Ok(SyncPolicy::Batch),
            "off" => Ok(SyncPolicy::Off),
            other => Err(format!(
                "unknown --wal-sync policy '{other}' (expected always|batch|off)"
            )),
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SyncPolicy::Always => "always",
            SyncPolicy::Batch => "batch",
            SyncPolicy::Off => "off",
        })
    }
}

/// Counters the engine exposes as `pm_wal_*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since open.
    pub records: u64,
    /// Payload + framing bytes appended since open.
    pub bytes: u64,
    /// fsync calls issued since open.
    pub fsyncs: u64,
    /// The next LSN to be assigned.
    pub next_lsn: u64,
}

/// A torn or corrupt tail found while scanning: everything from
/// `valid_len` onwards in `path` (and any later segment) is garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// The segment holding the first corrupt frame.
    pub path: PathBuf,
    /// Byte offset of the last valid frame end in that segment.
    pub valid_len: u64,
    /// Human-readable reason (CRC mismatch, short frame, bad header…).
    pub reason: String,
}

/// The result of scanning a WAL directory.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// The decoded valid records as `(lsn, record)`, ascending.
    pub records: Vec<(u64, WalRecord)>,
    /// One past the last valid record's LSN.
    pub next_lsn: u64,
    /// The first corruption found, if any (scan stops there).
    pub torn: Option<TornTail>,
}

fn segment_path(dir: &Path, base: u64) -> PathBuf {
    dir.join(format!("wal-{base:020}.pmwal"))
}

/// Lists the segment files of `dir` sorted by base LSN (taken from the
/// file name; the header is validated during the scan).
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(base) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".pmwal"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((base, entry.path()));
        }
    }
    segments.sort_unstable();
    Ok(segments)
}

/// Scans every segment of `dir`, decoding records with `lsn >= from_lsn`.
/// Stops at the first ill-formed frame and reports it as [`ScanOutcome::torn`];
/// records before the corruption point are still returned. A missing
/// directory scans as empty.
pub fn scan(dir: &Path, from_lsn: u64) -> io::Result<ScanOutcome> {
    let mut out = ScanOutcome::default();
    let segments = match list_segments(dir) {
        Ok(segments) => segments,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for (file_base, path) in segments {
        let mut file = File::open(&path)?;
        let mut header = [0u8; SEGMENT_HEADER as usize];
        if let Err(e) = file.read_exact(&mut header) {
            out.torn = Some(TornTail {
                path,
                valid_len: 0,
                reason: format!("truncated segment header: {e}"),
            });
            return Ok(out);
        }
        if &header[..8] != SEGMENT_MAGIC {
            out.torn = Some(TornTail {
                path,
                valid_len: 0,
                reason: "bad segment magic".into(),
            });
            return Ok(out);
        }
        let base = u64::from_le_bytes(header[8..16].try_into().unwrap());
        if base != file_base
            || (out.next_lsn != 0 || !out.records.is_empty()) && base != out.next_lsn
        {
            out.torn = Some(TornTail {
                path,
                valid_len: 0,
                reason: format!(
                    "segment base {base} does not continue the log at {}",
                    out.next_lsn
                ),
            });
            return Ok(out);
        }
        let mut lsn = base;
        if out.records.is_empty() && out.next_lsn == 0 {
            out.next_lsn = base;
        }
        let mut offset = SEGMENT_HEADER;
        let mut frame = [0u8; FRAME_HEADER as usize];
        loop {
            match file.read_exact(&mut frame) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    // A clean end-of-segment lands exactly on a frame
                    // boundary; a partial frame header is a torn record.
                    let actual = file.seek(SeekFrom::End(0))?;
                    if actual != offset {
                        out.torn = Some(TornTail {
                            path,
                            valid_len: offset,
                            reason: "torn frame header at segment tail".into(),
                        });
                        return Ok(out);
                    }
                    break;
                }
                Err(e) => return Err(e),
            }
            let len = u32::from_le_bytes(frame[0..4].try_into().unwrap());
            let crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
            if len == 0 || len > MAX_RECORD_BYTES {
                out.torn = Some(TornTail {
                    path,
                    valid_len: offset,
                    reason: format!("implausible record length {len}"),
                });
                return Ok(out);
            }
            let mut payload = vec![0u8; len as usize];
            if let Err(e) = file.read_exact(&mut payload) {
                out.torn = Some(TornTail {
                    path,
                    valid_len: offset,
                    reason: format!("torn record payload: {e}"),
                });
                return Ok(out);
            }
            if crc32(&payload) != crc {
                out.torn = Some(TornTail {
                    path,
                    valid_len: offset,
                    reason: "record CRC mismatch".into(),
                });
                return Ok(out);
            }
            let record = match WalRecord::decode(&payload) {
                Ok(record) => record,
                Err(e) => {
                    out.torn = Some(TornTail {
                        path,
                        valid_len: offset,
                        reason: format!("undecodable record: {e}"),
                    });
                    return Ok(out);
                }
            };
            offset += FRAME_HEADER + len as u64;
            if lsn >= from_lsn {
                out.records.push((lsn, record));
            }
            lsn += 1;
            out.next_lsn = lsn;
        }
    }
    Ok(out)
}

struct Writer {
    file: File,
    segment_bytes: u64,
    next_lsn: u64,
    unsynced: u64,
}

/// The append side of the log. Appends are internally serialized; the
/// engine additionally calls [`Wal::append`] under its batch ordering
/// lock, so WAL order equals apply order.
pub struct Wal {
    dir: PathBuf,
    policy: SyncPolicy,
    writer: Mutex<Writer>,
    records: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    truncated_bytes: u64,
}

impl Wal {
    /// Opens `dir` for appending: scans existing segments, truncates any
    /// torn tail (deleting segments past the corruption point) and
    /// positions the writer after the last valid record. Creates the
    /// directory if needed. Returns the log and the number of corrupt
    /// bytes discarded.
    pub fn open(dir: &Path, policy: SyncPolicy) -> io::Result<Wal> {
        fs::create_dir_all(dir)?;
        let outcome = scan(dir, u64::MAX)?; // decode-validate, keep no records
        let mut truncated_bytes = 0u64;
        if let Some(torn) = &outcome.torn {
            truncated_bytes = Self::truncate_torn(dir, torn)?;
        }
        let segments = list_segments(dir)?;
        let writer = match segments.last() {
            Some((_, path)) => {
                let mut file = OpenOptions::new().read(true).write(true).open(path)?;
                let len = file.seek(SeekFrom::End(0))?;
                Writer {
                    file,
                    segment_bytes: len,
                    next_lsn: outcome.next_lsn,
                    unsynced: 0,
                }
            }
            None => Self::fresh_segment(dir, outcome.next_lsn)?,
        };
        Ok(Wal {
            dir: dir.to_path_buf(),
            policy,
            writer: Mutex::new(writer),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            truncated_bytes,
        })
    }

    /// Drops the torn suffix reported by a scan: truncates the corrupt
    /// segment to its valid prefix (removing it entirely when not even the
    /// header survived) and deletes every later segment. Returns the bytes
    /// discarded.
    fn truncate_torn(dir: &Path, torn: &TornTail) -> io::Result<u64> {
        let mut discarded = 0u64;
        let len = fs::metadata(&torn.path)?.len();
        if torn.valid_len < SEGMENT_HEADER {
            discarded += len;
            fs::remove_file(&torn.path)?;
        } else if len > torn.valid_len {
            discarded += len - torn.valid_len;
            let file = OpenOptions::new().write(true).open(&torn.path)?;
            file.set_len(torn.valid_len)?;
            file.sync_all()?;
        }
        // Everything after the corrupt segment is unreachable garbage.
        let torn_base = torn
            .path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("wal-"))
            .and_then(|n| n.strip_suffix(".pmwal"))
            .and_then(|n| n.parse::<u64>().ok())
            .unwrap_or(u64::MAX);
        for (base, path) in list_segments(dir)? {
            if base > torn_base {
                discarded += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                fs::remove_file(&path)?;
            }
        }
        Ok(discarded)
    }

    fn fresh_segment(dir: &Path, base: u64) -> io::Result<Writer> {
        let path = segment_path(dir, base);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(path)?;
        file.write_all(SEGMENT_MAGIC)?;
        file.write_all(&base.to_le_bytes())?;
        Ok(Writer {
            file,
            segment_bytes: SEGMENT_HEADER,
            next_lsn: base,
            unsynced: 0,
        })
    }

    /// Appends one record and returns its LSN, fsyncing per policy.
    pub fn append(&self, record: &WalRecord) -> io::Result<u64> {
        self.append_payload(&record.encode())
    }

    /// Appends one pre-encoded record payload (see
    /// [`crate::record::encode_ingest_batch`] and friends) and returns its
    /// LSN, fsyncing per policy. The payload must be a valid
    /// [`WalRecord`] encoding — the scanner decodes it on recovery.
    pub fn append_payload(&self, payload: &[u8]) -> io::Result<u64> {
        let mut frame = Vec::with_capacity(payload.len() + FRAME_HEADER as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);

        let mut w = self.writer.lock().expect("wal writer poisoned");
        w.file.write_all(&frame)?;
        let lsn = w.next_lsn;
        w.next_lsn += 1;
        w.segment_bytes += frame.len() as u64;
        w.unsynced += frame.len() as u64;
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);

        let rotate = w.segment_bytes >= SEGMENT_BYTES;
        let sync_now = match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::Batch => rotate || w.unsynced >= BATCH_SYNC_BYTES,
            SyncPolicy::Off => false,
        };
        if sync_now {
            w.file.sync_data()?;
            w.unsynced = 0;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        if rotate {
            let base = w.next_lsn;
            *w = Self::fresh_segment(&self.dir, base)?;
        }
        Ok(lsn)
    }

    /// Forces everything appended so far to disk (used at snapshot time
    /// and on shutdown, regardless of policy — except `off`, which never
    /// syncs).
    pub fn sync(&self) -> io::Result<()> {
        if self.policy == SyncPolicy::Off {
            return Ok(());
        }
        let mut w = self.writer.lock().expect("wal writer poisoned");
        if w.unsynced > 0 {
            w.file.sync_data()?;
            w.unsynced = 0;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// The LSN the next appended record will receive.
    pub fn next_lsn(&self) -> u64 {
        self.writer.lock().expect("wal writer poisoned").next_lsn
    }

    /// Corrupt bytes discarded when the log was opened.
    pub fn truncated_bytes(&self) -> u64 {
        self.truncated_bytes
    }

    /// Deletes segments every record of which is `< lsn` (covered by a
    /// snapshot). The segment containing `lsn` survives, so replay from
    /// `lsn` keeps working.
    pub fn prune_up_to(&self, lsn: u64) -> io::Result<u64> {
        let _w = self.writer.lock().expect("wal writer poisoned");
        let segments = list_segments(&self.dir)?;
        let mut removed = 0u64;
        // A segment is fully covered iff the *next* segment starts at or
        // below `lsn` (its own records then all precede it).
        for pair in segments.windows(2) {
            if pair[1].0 <= lsn {
                fs::remove_file(&pair[0].1)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Counter snapshot for metrics export.
    pub fn stats(&self) -> WalStats {
        WalStats {
            records: self.records.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            next_lsn: self.next_lsn(),
        }
    }

    /// The directory this log appends to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::{Object, ObjectId, UserId, ValueId};
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pm-wal-test-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ingest(id: u64) -> WalRecord {
        WalRecord::IngestBatch {
            objects: vec![Object::new(ObjectId::new(id), vec![ValueId::new(1)])],
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = test_dir("roundtrip");
        let wal = Wal::open(&dir, SyncPolicy::Always).unwrap();
        for i in 0..10 {
            assert_eq!(wal.append(&ingest(i)).unwrap(), i);
        }
        assert_eq!(wal.next_lsn(), 10);
        drop(wal);
        let outcome = scan(&dir, 0).unwrap();
        assert!(outcome.torn.is_none());
        assert_eq!(outcome.next_lsn, 10);
        assert_eq!(outcome.records.len(), 10);
        assert_eq!(outcome.records[3], (3, ingest(3)));
        // A tail scan skips the covered prefix.
        let tail = scan(&dir, 7).unwrap();
        assert_eq!(tail.records.len(), 3);
        assert_eq!(tail.records[0].0, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_lsn_sequence() {
        let dir = test_dir("reopen");
        {
            let wal = Wal::open(&dir, SyncPolicy::Batch).unwrap();
            wal.append(&ingest(0)).unwrap();
            wal.append(&ingest(1)).unwrap();
        }
        let wal = Wal::open(&dir, SyncPolicy::Batch).unwrap();
        assert_eq!(wal.next_lsn(), 2);
        assert_eq!(wal.append(&ingest(2)).unwrap(), 2);
        drop(wal);
        let outcome = scan(&dir, 0).unwrap();
        assert_eq!(outcome.records.len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_record_is_detected_and_truncated() {
        let dir = test_dir("torn");
        {
            let wal = Wal::open(&dir, SyncPolicy::Always).unwrap();
            for i in 0..5 {
                wal.append(&ingest(i)).unwrap();
            }
        }
        // Chop ten bytes off the tail: the last record is torn.
        let (base, path) = list_segments(&dir).unwrap().pop().unwrap();
        assert_eq!(base, 0);
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 10)
            .unwrap();
        let outcome = scan(&dir, 0).unwrap();
        assert_eq!(outcome.records.len(), 4, "first four records survive");
        assert!(outcome.torn.is_some());
        assert_eq!(outcome.next_lsn, 4);
        // Re-open truncates and appends cleanly after the valid prefix.
        let wal = Wal::open(&dir, SyncPolicy::Always).unwrap();
        assert!(wal.truncated_bytes() > 0);
        assert_eq!(wal.append(&ingest(4)).unwrap(), 4);
        drop(wal);
        let healed = scan(&dir, 0).unwrap();
        assert!(healed.torn.is_none());
        assert_eq!(healed.records.len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_crc_stops_the_scan() {
        let dir = test_dir("bitflip");
        {
            let wal = Wal::open(&dir, SyncPolicy::Always).unwrap();
            for i in 0..3 {
                wal.append(&ingest(i)).unwrap();
            }
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one bit in the middle record's payload.
        let victim = bytes.len() / 2;
        bytes[victim] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let outcome = scan(&dir, 0).unwrap();
        assert!(outcome.torn.is_some(), "corruption must be detected");
        assert!(outcome.records.len() < 3);
        // Recovery still opens and can append after the valid prefix.
        let wal = Wal::open(&dir, SyncPolicy::Always).unwrap();
        let lsn = wal.append(&ingest(99)).unwrap();
        assert_eq!(lsn, outcome.next_lsn);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_segment_header_is_survivable() {
        let dir = test_dir("header");
        {
            let wal = Wal::open(&dir, SyncPolicy::Always).unwrap();
            wal.append(&ingest(0)).unwrap();
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(5)
            .unwrap();
        let outcome = scan(&dir, 0).unwrap();
        assert_eq!(outcome.records.len(), 0);
        assert!(outcome.torn.is_some());
        let wal = Wal::open(&dir, SyncPolicy::Always).unwrap();
        // The unreadable segment was removed; the log restarts at LSN 0.
        assert_eq!(wal.append(&ingest(0)).unwrap(), 0);
        drop(wal);
        assert!(scan(&dir, 0).unwrap().torn.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn register_records_roundtrip_through_the_log() {
        let dir = test_dir("register");
        let mut p = pm_porder::Preference::new(1);
        p.relation_mut(pm_model::AttrId::new(0))
            .insert(ValueId::new(0), ValueId::new(1))
            .unwrap();
        let record = WalRecord::Register {
            user: UserId::new(7),
            preference: p,
        };
        {
            let wal = Wal::open(&dir, SyncPolicy::Batch).unwrap();
            wal.append(&record).unwrap();
            wal.sync().unwrap();
        }
        let outcome = scan(&dir, 0).unwrap();
        assert_eq!(outcome.records, vec![(0, record)]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
