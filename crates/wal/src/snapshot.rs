//! Snapshot files: one encoded [`EngineState`] behind a magic, the covered
//! LSN and a CRC32, written atomically (temp file + fsync + rename) so a
//! crash mid-write can never clobber the previous snapshot.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::record::EngineState;

/// Current snapshot format: payload is [`EngineState::encode`] (one dedup
/// table of distinct preferences, occurrences as `u32` indices).
const SNAPSHOT_MAGIC_V2: &[u8; 8] = b"PMSNAP02";
/// Legacy format written before preference interning: payload is
/// [`EngineState::encode_v1`] with every preference spelled out in place.
/// Still read on recovery so pre-refactor snapshots keep loading.
const SNAPSHOT_MAGIC_V1: &[u8; 8] = b"PMSNAP01";
/// Keep this many snapshots around; older ones are pruned after a
/// successful write (the extras are the fallback when the newest turns
/// out corrupt).
const KEEP_SNAPSHOTS: usize = 2;

fn snapshot_path(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("snapshot-{lsn:020}.pmsnap"))
}

fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut snapshots = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(lsn) = name
            .strip_prefix("snapshot-")
            .and_then(|rest| rest.strip_suffix(".pmsnap"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            snapshots.push((lsn, entry.path()));
        }
    }
    snapshots.sort_unstable();
    Ok(snapshots)
}

/// Writes `state` as `snapshot-<last_lsn>.pmsnap` in `dir` (creating the
/// directory if needed), atomically, then prunes all but the newest two
/// snapshots (`KEEP_SNAPSHOTS`). Returns the final path. Always writes the
/// current (v2, interned-table) format.
pub fn write_snapshot(dir: &Path, state: &EngineState) -> io::Result<PathBuf> {
    write_snapshot_format(dir, state, SNAPSHOT_MAGIC_V2, state.encode())
}

/// Writes `state` in the legacy (v1, `PMSNAP01`) format. Exists so compat
/// tests and downgrade tooling can produce pre-interning snapshot files;
/// the engine itself always writes v2.
pub fn write_snapshot_v1(dir: &Path, state: &EngineState) -> io::Result<PathBuf> {
    write_snapshot_format(dir, state, SNAPSHOT_MAGIC_V1, state.encode_v1())
}

fn write_snapshot_format(
    dir: &Path,
    state: &EngineState,
    magic: &[u8; 8],
    payload: Vec<u8>,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let mut bytes = Vec::with_capacity(payload.len() + 24);
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&state.last_lsn.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = dir.join(format!(".snapshot-{:020}.tmp", state.last_lsn));
    {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    let path = snapshot_path(dir, state.last_lsn);
    fs::rename(&tmp, &path)?;
    // Make the rename itself durable.
    if let Ok(dirf) = File::open(dir) {
        let _ = dirf.sync_all();
    }
    let snapshots = list_snapshots(dir)?;
    if snapshots.len() > KEEP_SNAPSHOTS {
        for (_, old) in &snapshots[..snapshots.len() - KEEP_SNAPSHOTS] {
            let _ = fs::remove_file(old);
        }
    }
    Ok(path)
}

/// A snapshot successfully loaded from disk.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The decoded engine state.
    pub state: EngineState,
    /// The file it came from.
    pub path: PathBuf,
    /// Newer snapshot files that failed validation and were skipped.
    pub skipped: usize,
}

fn read_snapshot(path: &Path) -> Result<EngineState, String> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("unreadable: {e}"))?;
    if bytes.len() < 24 {
        return Err("bad snapshot magic".into());
    }
    let magic: &[u8; 8] = bytes[..8].try_into().unwrap();
    if magic != SNAPSHOT_MAGIC_V2 && magic != SNAPSHOT_MAGIC_V1 {
        return Err("bad snapshot magic".into());
    }
    let lsn = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    let payload = bytes
        .get(24..24 + len)
        .ok_or_else(|| "truncated snapshot payload".to_string())?;
    if bytes.len() != 24 + len {
        return Err("trailing snapshot bytes".into());
    }
    if crc32(payload) != crc {
        return Err("snapshot CRC mismatch".into());
    }
    let state = if magic == SNAPSHOT_MAGIC_V1 {
        EngineState::decode_v1(payload)
    } else {
        EngineState::decode(payload)
    }
    .map_err(|e| format!("undecodable snapshot: {e}"))?;
    if state.last_lsn != lsn {
        return Err("snapshot LSN header disagrees with payload".into());
    }
    Ok(state)
}

/// Loads the newest snapshot in `dir` that validates (magic, CRC, decode),
/// skipping corrupt ones newest-first. `Ok(None)` when the directory holds
/// no usable snapshot (including when it does not exist) — recovery then
/// replays the WAL from LSN 0.
pub fn load_latest_snapshot(dir: &Path) -> io::Result<Option<LoadedSnapshot>> {
    let snapshots = match list_snapshots(dir) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut skipped = 0;
    for (_, path) in snapshots.into_iter().rev() {
        match read_snapshot(&path) {
            Ok(state) => {
                return Ok(Some(LoadedSnapshot {
                    state,
                    path,
                    skipped,
                }))
            }
            Err(_) => skipped += 1,
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pm-snap-test-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn state(lsn: u64) -> EngineState {
        EngineState {
            backend: "baseline".into(),
            shards: 1,
            arity: 2,
            last_lsn: lsn,
            next_id: lsn * 10,
            ..EngineState::default()
        }
    }

    #[test]
    fn write_then_load_newest() {
        let dir = test_dir("roundtrip");
        write_snapshot(&dir, &state(5)).unwrap();
        write_snapshot(&dir, &state(9)).unwrap();
        let loaded = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(loaded.state.last_lsn, 9);
        assert_eq!(loaded.state.next_id, 90);
        assert_eq!(loaded.skipped, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = test_dir("fallback");
        write_snapshot(&dir, &state(5)).unwrap();
        let newest = write_snapshot(&dir, &state(9)).unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        let loaded = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(
            loaded.state.last_lsn, 5,
            "fell back across the corrupt file"
        );
        assert_eq!(loaded.skipped, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_no_snapshot() {
        let dir = test_dir("missing");
        assert!(load_latest_snapshot(&dir).unwrap().is_none());
    }

    #[test]
    fn legacy_v1_snapshot_still_loads() {
        use pm_model::{AttrId, UserId, ValueId};
        use pm_porder::Preference;
        let dir = test_dir("v1-compat");
        let mut pref = Preference::new(2);
        pref.relation_mut(AttrId::new(0))
            .insert(ValueId::new(0), ValueId::new(1))
            .unwrap();
        let mut state = state(7);
        state.members = vec![vec![
            (UserId::new(0), pref.clone()),
            (UserId::new(1), pref.clone()),
        ]];
        write_snapshot_v1(&dir, &state).unwrap();
        let loaded = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(loaded.state.last_lsn, 7);
        assert_eq!(loaded.state.members, state.members);
        assert_eq!(loaded.skipped, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_v2_falls_back_to_older_v1() {
        let dir = test_dir("v2-to-v1");
        write_snapshot_v1(&dir, &state(5)).unwrap();
        let newest = write_snapshot(&dir, &state(9)).unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        let loaded = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(loaded.state.last_lsn, 5, "fell back to the v1 file");
        assert_eq!(loaded.skipped, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn old_snapshots_are_pruned() {
        let dir = test_dir("prune");
        for lsn in [1, 2, 3, 4] {
            write_snapshot(&dir, &state(lsn)).unwrap();
        }
        let remaining = list_snapshots(&dir).unwrap();
        assert_eq!(remaining.len(), KEEP_SNAPSHOTS);
        assert_eq!(remaining.last().unwrap().0, 4);
        fs::remove_dir_all(&dir).unwrap();
    }
}
