//! Work counters shared by all monitors.
//!
//! The paper's figures report, besides wall-clock time, the *number of
//! pairwise object comparisons* performed while maintaining the frontiers
//! (Figs. 4b–11b). Every monitor in this crate counts each invocation of the
//! dominance comparator as one comparison so those plots can be regenerated
//! exactly, independent of machine speed.

use std::fmt;

/// Running counters of the work performed by a monitor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Number of objects processed (arrivals).
    pub arrivals: u64,
    /// Number of objects that expired from the sliding window (always zero
    /// for append-only monitors).
    pub expirations: u64,
    /// Number of pairwise object dominance comparisons.
    pub comparisons: u64,
    /// Number of (object, user) pairs for which the object was reported as
    /// Pareto-optimal at arrival time (i.e. the summed sizes of the returned
    /// target-user sets).
    pub notifications: u64,
    /// Objects currently retained in the backfill history of an append-only
    /// monitor (a gauge, not a counter; always zero for sliding-window
    /// monitors, whose alive set is the window itself).
    pub history_objects: u64,
    /// Lifetime count of objects dropped from the backfill history by
    /// truncation, skyline-union compaction or the optional hard cap — the
    /// memory saved versus an unlimited history.
    pub history_evicted: u64,
    /// Estimated heap bytes of the retained backfill history (a gauge;
    /// compacting histories store each distinct value vector once with an
    /// id list, so this is the metric that shows the memory reduction on
    /// streams that repeat vectors).
    pub history_bytes: u64,
    /// Number of distinct preferences across the monitor's users (a gauge;
    /// users with identical preferences share one compiled state, so this
    /// is what per-user memory and churn cost actually scale with).
    pub distinct_preferences: u64,
    /// Estimated heap bytes of the stored preferences and their compiled
    /// bitset forms, counted once per distinct preference (a gauge).
    pub preference_bytes: u64,
}

impl MonitorStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one pairwise object comparison.
    #[inline]
    pub fn record_comparison(&mut self) {
        self.comparisons += 1;
    }

    /// Records `n` pairwise object comparisons.
    #[inline]
    pub fn record_comparisons(&mut self, n: u64) {
        self.comparisons += n;
    }

    /// Records the processing of one arriving object with `targets` target
    /// users.
    #[inline]
    pub fn record_arrival(&mut self, targets: usize) {
        self.arrivals += 1;
        self.notifications += targets as u64;
    }

    /// Records the expiration of one object from the sliding window.
    #[inline]
    pub fn record_expiration(&mut self) {
        self.expirations += 1;
    }

    /// Average number of comparisons per arrival (0 if nothing arrived).
    pub fn comparisons_per_arrival(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.comparisons as f64 / self.arrivals as f64
        }
    }
}

impl fmt::Display for MonitorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "arrivals={} expirations={} comparisons={} notifications={} \
             history_objects={} history_evicted={} history_bytes={} \
             distinct_preferences={} preference_bytes={}",
            self.arrivals,
            self.expirations,
            self.comparisons,
            self.notifications,
            self.history_objects,
            self.history_evicted,
            self.history_bytes,
            self.distinct_preferences,
            self.preference_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = MonitorStats::new();
        s.record_arrival(3);
        s.record_arrival(0);
        s.record_comparison();
        s.record_comparisons(4);
        s.record_expiration();
        assert_eq!(s.arrivals, 2);
        assert_eq!(s.notifications, 3);
        assert_eq!(s.comparisons, 5);
        assert_eq!(s.expirations, 1);
        assert_eq!(s.comparisons_per_arrival(), 2.5);
    }

    #[test]
    fn empty_stats_have_zero_rate() {
        assert_eq!(MonitorStats::new().comparisons_per_arrival(), 0.0);
    }

    #[test]
    fn display_is_human_readable() {
        let mut s = MonitorStats::new();
        s.record_arrival(1);
        assert_eq!(
            s.to_string(),
            "arrivals=1 expirations=0 comparisons=0 notifications=1 \
             history_objects=0 history_evicted=0 history_bytes=0 \
             distinct_preferences=0 preference_bytes=0"
        );
    }
}
