//! Accuracy of approximate monitoring (Sec. 6.2, Eq. 6–8, Tables 11–12).
//!
//! Approximate common preference relations can filter out objects that a
//! member user actually considers Pareto-optimal (false negatives), which in
//! turn can let dominated objects sneak into a user's reported frontier
//! (false positives). Accuracy is measured against the exact frontiers by
//! micro-averaged precision, recall and F-measure:
//!
//! ```text
//! precision = Σ_c |P̂_c ∩ P_c| / Σ_c |P̂_c|
//! recall    = Σ_c |P̂_c ∩ P_c| / Σ_c |P_c|
//! ```

use std::collections::HashSet;

use pm_model::ObjectId;

/// Per-user (or aggregated) confusion matrix with respect to the exact
/// frontier (Table 7 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Objects reported Pareto-optimal that truly are (region IV in Fig. 2).
    pub true_positives: u64,
    /// Objects reported Pareto-optimal that are not (region V).
    pub false_positives: u64,
    /// Truly Pareto-optimal objects that were missed (region III).
    pub false_negatives: u64,
}

impl ConfusionMatrix {
    /// Accumulates another matrix into this one.
    pub fn absorb(&mut self, other: ConfusionMatrix) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }

    /// Precision (Eq. 6). Defined as 1 when nothing was reported.
    pub fn precision(&self) -> f64 {
        let reported = self.true_positives + self.false_positives;
        if reported == 0 {
            1.0
        } else {
            self.true_positives as f64 / reported as f64
        }
    }

    /// Recall (Eq. 7). Defined as 1 when there was nothing to find.
    pub fn recall(&self) -> f64 {
        let relevant = self.true_positives + self.false_negatives;
        if relevant == 0 {
            1.0
        } else {
            self.true_positives as f64 / relevant as f64
        }
    }

    /// F-measure: the harmonic mean of precision and recall.
    pub fn f_measure(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// The accuracy of an approximate monitor, aggregated over all users.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccuracyReport {
    /// Aggregated confusion counts.
    pub matrix: ConfusionMatrix,
    /// Number of users compared.
    pub users: usize,
}

impl AccuracyReport {
    /// Compares per-user frontiers: `exact[c]` is the ground-truth frontier
    /// of user `c` (e.g. from [`crate::BaselineMonitor`]), `approx[c]` the
    /// frontier reported by the approximate monitor.
    ///
    /// # Panics
    /// Panics if the two slices have different lengths.
    pub fn compare(exact: &[Vec<ObjectId>], approx: &[Vec<ObjectId>]) -> Self {
        assert_eq!(
            exact.len(),
            approx.len(),
            "exact and approximate frontiers must cover the same users"
        );
        let mut matrix = ConfusionMatrix::default();
        for (truth, reported) in exact.iter().zip(approx) {
            let truth_set: HashSet<ObjectId> = truth.iter().copied().collect();
            let reported_set: HashSet<ObjectId> = reported.iter().copied().collect();
            let tp = truth_set.intersection(&reported_set).count() as u64;
            matrix.absorb(ConfusionMatrix {
                true_positives: tp,
                false_positives: reported_set.len() as u64 - tp,
                false_negatives: truth_set.len() as u64 - tp,
            });
        }
        Self {
            matrix,
            users: exact.len(),
        }
    }

    /// Precision (Eq. 6).
    pub fn precision(&self) -> f64 {
        self.matrix.precision()
    }

    /// Recall (Eq. 7).
    pub fn recall(&self) -> f64 {
        self.matrix.recall()
    }

    /// F-measure.
    pub fn f_measure(&self) -> f64 {
        self.matrix.f_measure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<ObjectId> {
        v.iter().map(|&i| ObjectId::new(i)).collect()
    }

    #[test]
    fn perfect_agreement_scores_one() {
        let exact = vec![ids(&[1, 2]), ids(&[3])];
        let report = AccuracyReport::compare(&exact, &exact);
        assert_eq!(report.precision(), 1.0);
        assert_eq!(report.recall(), 1.0);
        assert_eq!(report.f_measure(), 1.0);
        assert_eq!(report.users, 2);
    }

    #[test]
    fn false_negatives_reduce_recall_only() {
        let exact = vec![ids(&[1, 2, 3, 4])];
        let approx = vec![ids(&[1, 2])];
        let report = AccuracyReport::compare(&exact, &approx);
        assert_eq!(report.precision(), 1.0);
        assert_eq!(report.recall(), 0.5);
        assert!((report.f_measure() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn false_positives_reduce_precision_only() {
        let exact = vec![ids(&[1, 2])];
        let approx = vec![ids(&[1, 2, 3, 4])];
        let report = AccuracyReport::compare(&exact, &approx);
        assert_eq!(report.precision(), 0.5);
        assert_eq!(report.recall(), 1.0);
    }

    #[test]
    fn aggregation_is_micro_averaged() {
        // user 0: 1 TP out of 1 reported / 2 relevant;
        // user 1: 3 TP out of 4 reported / 3 relevant.
        let exact = vec![ids(&[1, 2]), ids(&[10, 11, 12])];
        let approx = vec![ids(&[1]), ids(&[10, 11, 12, 13])];
        let report = AccuracyReport::compare(&exact, &approx);
        assert_eq!(report.matrix.true_positives, 4);
        assert_eq!(report.matrix.false_positives, 1);
        assert_eq!(report.matrix.false_negatives, 1);
        assert_eq!(report.precision(), 4.0 / 5.0);
        assert_eq!(report.recall(), 4.0 / 5.0);
    }

    #[test]
    fn empty_frontiers_are_perfectly_accurate() {
        let report = AccuracyReport::compare(&[vec![]], &[vec![]]);
        assert_eq!(report.precision(), 1.0);
        assert_eq!(report.recall(), 1.0);
        assert_eq!(report.f_measure(), 1.0);
    }

    #[test]
    fn totally_wrong_report_scores_zero_f() {
        let exact = vec![ids(&[1])];
        let approx = vec![ids(&[2])];
        let report = AccuracyReport::compare(&exact, &approx);
        assert_eq!(report.precision(), 0.0);
        assert_eq!(report.recall(), 0.0);
        assert_eq!(report.f_measure(), 0.0);
    }

    #[test]
    #[should_panic(expected = "same users")]
    fn mismatched_user_counts_panic() {
        AccuracyReport::compare(&[vec![]], &[vec![], vec![]]);
    }

    #[test]
    fn confusion_matrix_absorb_accumulates() {
        let mut m = ConfusionMatrix {
            true_positives: 1,
            false_positives: 2,
            false_negatives: 3,
        };
        m.absorb(ConfusionMatrix {
            true_positives: 4,
            false_positives: 5,
            false_negatives: 6,
        });
        assert_eq!(m.true_positives, 5);
        assert_eq!(m.false_positives, 7);
        assert_eq!(m.false_negatives, 9);
    }
}
