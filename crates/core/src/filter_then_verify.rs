//! Algorithm 2 — `FilterThenVerify` (and its approximate variant,
//! `FilterThenVerifyApprox`, Sec. 6).
//!
//! Users are grouped into clusters of similar preferences. Each cluster `U`
//! is represented by a *virtual user* whose preference relation is the
//! common (or approximate common) preference relation of the members. The
//! cluster maintains a shared Pareto frontier `P_U` which, by Theorem 4.5,
//! is a superset of every member's frontier: an arriving object dominated
//! within `P_U` can be discarded for all members at once (filter step); an
//! object that survives is verified against each member's own frontier
//! (verify step).

use pm_model::{Object, ObjectId, UserId};
use pm_porder::{CompiledPreference, Dominance, Interned, Preference, PreferenceInterner};

use pm_cluster::{
    approx_common_preference, ApproxConfig, Cluster, Clustering, Placement, Removal, Update,
};

use crate::baseline::{backfill_frontier, update_pareto_frontier_traced, Frontier};
use crate::delta::DeltaLog;
use crate::history::{History, HistoryMode};
use crate::monitor::{Arrival, ContinuousMonitor, MonitorState};
use crate::stats::MonitorStats;
use crate::timers::{timed, MonitorTimers};

/// How a membership change must repair the affected cluster, shared by the
/// append-only and sliding FilterThenVerify monitors.
pub(crate) enum ClusterRepair {
    /// Remove the cluster at this index (swap-remove).
    Drop(usize),
    /// Recompute the cluster's virtual preference; `Some` carries the exact
    /// common relation already computed by a maintained [`Clustering`].
    Recompute(usize, Option<Preference>),
    /// The user was in no cluster (hand-built monitors only).
    Detached,
}

/// The virtual preference a cluster of `members` should carry: the
/// approximate common relation (Alg. 3) when the monitor is an approx
/// variant, else the exact common relation (Def. 4.1).
pub(crate) fn members_virtual_preference(
    users: &[Interned],
    members: &[UserId],
    approx: Option<ApproxConfig>,
) -> Preference {
    let prefs = members.iter().map(|m| users[m.index()].preference.as_ref());
    match approx {
        Some(config) => approx_common_preference(prefs, config),
        None => Preference::common_of(prefs),
    }
}

/// The virtual preference a cluster should carry after a membership or
/// preference change: exact monitors use `exact_common` (the relation a
/// maintained [`Clustering`] already re-AND-folded) when available, approx
/// monitors (and hand-built exact monitors, which have no maintained
/// clustering) rebuild from the members' current preferences. Shared by
/// both FilterThenVerify monitors so the exact-vs-approx decision lives in
/// one place.
pub(crate) fn resolve_virtual_preference(
    users: &[Interned],
    members: &[UserId],
    approx: Option<ApproxConfig>,
    exact_common: Option<Preference>,
) -> Preference {
    match (approx, exact_common) {
        (None, Some(common)) => common,
        _ => members_virtual_preference(users, members, approx),
    }
}

/// Decides how removing `user` repairs the cluster list: consults (and
/// updates) the maintained clustering when present, else falls back to
/// scanning `member_lists` (hand-built monitors).
pub(crate) fn plan_detach<'a>(
    clustering: Option<&mut Clustering>,
    member_lists: impl Iterator<Item = &'a [UserId]>,
    user: UserId,
) -> ClusterRepair {
    match clustering {
        Some(clustering) => match clustering.remove_user(user) {
            Removal::Dissolved { cluster } => ClusterRepair::Drop(cluster),
            Removal::Shrunk { cluster, common } => ClusterRepair::Recompute(cluster, Some(common)),
        },
        None => {
            let mut lists = member_lists.enumerate();
            let Some((cluster, members)) = lists.find(|(_, members)| members.contains(&user))
            else {
                return ClusterRepair::Detached;
            };
            if members.len() == 1 {
                ClusterRepair::Drop(cluster)
            } else {
                ClusterRepair::Recompute(cluster, None)
            }
        }
    }
}

/// How an in-place preference update must repair the cluster list, shared
/// by the append-only and sliding FilterThenVerify monitors. Cluster
/// indices are valid in order: repair `from` first, then `to`.
pub(crate) enum UpdateRepair {
    /// The user stayed in this cluster: recompute its virtual preference
    /// (`Some` carries the exact common relation already re-AND-folded by
    /// the maintained [`Clustering`]).
    Stay(usize, Option<Preference>),
    /// The user left cluster `from` and joined existing cluster `to`; both
    /// virtual preferences must be recomputed.
    Move {
        from: usize,
        from_common: Option<Preference>,
        to: usize,
        to_common: Option<Preference>,
    },
    /// The user left cluster `from` and becomes a new singleton cluster,
    /// appended at the end of the cluster list by the caller.
    MoveSingleton {
        from: usize,
        from_common: Option<Preference>,
    },
    /// The user was in no cluster (hand-built monitors only).
    Detached,
}

/// Decides how updating `user`'s preference repairs the cluster list:
/// consults (and updates) the maintained clustering when present, else
/// falls back to scanning `member_lists` and keeping the user in its
/// current cluster (hand-built monitors have no branch cut to judge by).
pub(crate) fn plan_update<'a>(
    clustering: Option<&mut Clustering>,
    member_lists: impl Iterator<Item = &'a [UserId]>,
    user: UserId,
    preference: &Preference,
) -> UpdateRepair {
    match clustering {
        Some(clustering) => match clustering.update_user(user, preference) {
            Update::Stayed { cluster, common } => UpdateRepair::Stay(cluster, Some(common)),
            Update::Moved {
                from_cluster,
                from_common,
                to,
            } => match to {
                Placement::Joined { cluster, common } => UpdateRepair::Move {
                    from: from_cluster,
                    from_common: Some(from_common),
                    to: cluster,
                    to_common: Some(common),
                },
                Placement::Singleton { .. } => UpdateRepair::MoveSingleton {
                    from: from_cluster,
                    from_common: Some(from_common),
                },
            },
        },
        None => {
            let mut lists = member_lists.enumerate();
            match lists.find(|(_, members)| members.contains(&user)) {
                Some((cluster, _)) => UpdateRepair::Stay(cluster, None),
                None => UpdateRepair::Detached,
            }
        }
    }
}

/// After a swap-remove renumbered the previously-last user `moved` to
/// `user`, renames it across the maintained clustering and every cluster
/// member list.
pub(crate) fn renumber_member<'a>(
    clustering: Option<&mut Clustering>,
    member_lists: impl Iterator<Item = &'a mut Vec<UserId>>,
    moved: UserId,
    user: UserId,
) {
    if let Some(clustering) = clustering {
        clustering.rename_user(moved, user);
    }
    for members in member_lists {
        for member in members.iter_mut() {
            if *member == moved {
                *member = user;
            }
        }
    }
}

/// One cluster's shared state: the virtual user's preference and frontier.
#[derive(Debug, Clone)]
struct ClusterState {
    members: Vec<UserId>,
    /// Build-time form of the virtual user's preference (introspection).
    virtual_preference: Preference,
    /// Bitset form the filter step actually runs on.
    compiled: CompiledPreference,
    frontier: Frontier,
}

impl ClusterState {
    fn new(members: Vec<UserId>, virtual_preference: Preference) -> Self {
        let compiled = virtual_preference.compile();
        Self {
            members,
            virtual_preference,
            compiled,
            frontier: Frontier::new(),
        }
    }
}

/// Algorithm 2: shared-computation monitoring via user clusters.
///
/// The same type implements both `FilterThenVerify` (exact common
/// preference relations) and `FilterThenVerifyApprox` (approximate common
/// preference relations built by Alg. 3) — the algorithm is identical, only
/// the virtual users' preferences differ.
#[derive(Debug, Clone)]
pub struct FilterThenVerifyMonitor {
    /// Per-user interned preference handles: build-time and bitset forms
    /// are shared `Arc`s, one per *distinct* preference.
    users: Vec<Interned>,
    /// Deduplicates the users' preferences so memory and compilation scale
    /// with the number of distinct preferences, not the population size.
    interner: PreferenceInterner,
    user_frontiers: Vec<Frontier>,
    clusters: Vec<ClusterState>,
    /// Incrementally maintained clustering driving dynamic membership.
    /// `None` for monitors built from fixed cluster lists, which fall back
    /// to singleton insertion and `common_of` repair.
    clustering: Option<Clustering>,
    /// Alg. 3 thresholds when the virtual preferences are approximate:
    /// membership changes then rebuild the affected cluster's virtual
    /// preference with Alg. 3 instead of the exact intersection.
    approx: Option<ApproxConfig>,
    /// Retained object history for mid-stream registration/update backfill
    /// (see [`History`] for the cap semantics).
    history: History,
    stats: MonitorStats,
    /// Optional latency histograms (see [`MonitorTimers`]); disabled slots
    /// cost nothing.
    timers: MonitorTimers,
}

impl FilterThenVerifyMonitor {
    /// Creates a monitor from per-user preferences and clusters whose
    /// virtual users carry the *exact* common preference relations
    /// (FilterThenVerify).
    pub fn new(preferences: Vec<Preference>, clusters: &[Cluster]) -> Self {
        let states = clusters
            .iter()
            .map(|c| ClusterState::new(c.members.clone(), c.common.clone()))
            .collect();
        Self::from_states(preferences, states, None, None)
    }

    /// Creates a monitor backed by an incrementally maintained
    /// [`Clustering`] over the same users: [`Self::add_user`] then joins
    /// the most similar cluster (or spins up a singleton) and
    /// [`Self::remove_user`] repairs only the affected cluster, both
    /// through the clustering's compiled intersect path.
    pub fn with_clustering(preferences: Vec<Preference>, clustering: Clustering) -> Self {
        assert_eq!(
            clustering.num_users(),
            preferences.len(),
            "clustering must cover exactly the monitor's users"
        );
        let states = clustering
            .clusters()
            .into_iter()
            .map(|c| ClusterState::new(c.members, c.common))
            .collect();
        Self::from_states(preferences, states, Some(clustering), None)
    }

    /// Creates a monitor whose virtual users carry *approximate* common
    /// preference relations built with Alg. 3 under `config`
    /// (FilterThenVerifyApprox).
    pub fn with_approx_clusters(
        preferences: Vec<Preference>,
        clusters: &[Cluster],
        config: ApproxConfig,
    ) -> Self {
        let states = Self::approx_states(&preferences, clusters, config);
        Self::from_states(preferences, states, None, Some(config))
    }

    /// Like [`Self::with_clustering`], but the virtual preferences are the
    /// approximate common relations of Alg. 3 (FilterThenVerifyApprox with
    /// dynamic membership).
    pub fn with_approx_clustering(
        preferences: Vec<Preference>,
        clustering: Clustering,
        config: ApproxConfig,
    ) -> Self {
        assert_eq!(
            clustering.num_users(),
            preferences.len(),
            "clustering must cover exactly the monitor's users"
        );
        let states = Self::approx_states(&preferences, &clustering.clusters(), config);
        Self::from_states(preferences, states, Some(clustering), Some(config))
    }

    /// Creates a monitor with explicitly provided virtual-user preferences,
    /// one per cluster. Useful for tests and ablations.
    pub fn with_virtual_preferences(
        preferences: Vec<Preference>,
        clusters: Vec<(Vec<UserId>, Preference)>,
    ) -> Self {
        let states = clusters
            .into_iter()
            .map(|(members, virtual_preference)| ClusterState::new(members, virtual_preference))
            .collect();
        Self::from_states(preferences, states, None, None)
    }

    fn approx_states(
        preferences: &[Preference],
        clusters: &[Cluster],
        config: ApproxConfig,
    ) -> Vec<ClusterState> {
        clusters
            .iter()
            .map(|c| {
                let members = c.members.clone();
                let virtual_preference = approx_common_preference(
                    members.iter().map(|u| &preferences[u.index()]),
                    config,
                );
                ClusterState::new(members, virtual_preference)
            })
            .collect()
    }

    fn from_states(
        preferences: Vec<Preference>,
        clusters: Vec<ClusterState>,
        clustering: Option<Clustering>,
        approx: Option<ApproxConfig>,
    ) -> Self {
        let mut interner = PreferenceInterner::new();
        let users: Vec<Interned> = preferences.iter().map(|p| interner.intern(p)).collect();
        let user_frontiers = vec![Frontier::new(); users.len()];
        Self {
            users,
            interner,
            user_frontiers,
            clusters,
            clustering,
            approx,
            history: History::new(HistoryMode::Unlimited),
            stats: MonitorStats::new(),
            timers: MonitorTimers::disabled(),
        }
    }

    /// Caps the retained object history at `limit` objects (`None` =
    /// unlimited): [`Self::add_user`]/[`Self::update_user`] backfill then
    /// becomes best-effort once the cap truncates. Equivalent to
    /// [`Self::with_history`] with [`HistoryMode::from_limit`].
    pub fn with_history_limit(self, limit: Option<usize>) -> Self {
        self.with_history(HistoryMode::from_limit(limit))
    }

    /// Sets the history retention mode — in particular
    /// [`HistoryMode::Compact`], which keeps
    /// [`Self::add_user`]/[`Self::update_user`] backfill exact for every
    /// preference the monitor has ever observed while retaining only the
    /// skyline union (see [`crate::history`] for the full contract and the
    /// novel-preference caveat). Call right after construction — any
    /// already-retained history is discarded. The current users'
    /// preferences seed the compaction universe.
    pub fn with_history(mut self, mode: HistoryMode) -> Self {
        self.history = History::new(mode);
        for user in &self.users {
            self.history.observe(user.preference.as_ref());
        }
        self
    }

    /// Number of retained history objects (for cap observability).
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Lifetime count of history objects dropped by truncation or
    /// compaction.
    pub fn history_evicted(&self) -> u64 {
        self.history.evicted()
    }

    /// The retained history object ids, ascending (observability/tests).
    pub fn retained_history_ids(&self) -> Vec<ObjectId> {
        self.history.retained_ids()
    }

    /// Forces a compaction sweep of the retained history right now (no-op
    /// unless built with [`HistoryMode::Compact`]).
    pub fn compact_history_now(&mut self) {
        self.history.compact_now();
    }

    /// Number of clusters (`k` in the paper's cost model).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The preference of `user`.
    pub fn preference(&self, user: UserId) -> &Preference {
        self.users[user.index()].preference.as_ref()
    }

    /// Number of distinct preferences across the current users (a gauge;
    /// users with equal preferences share one compiled bitset).
    pub fn distinct_preferences(&self) -> usize {
        self.interner.distinct()
    }

    /// The cluster-level ("virtual user") frontier `P_U`, sorted by id.
    pub fn cluster_frontier(&self, cluster: usize) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.clusters[cluster].frontier.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The virtual preference used by a cluster (common or approximate).
    pub fn virtual_preference(&self, cluster: usize) -> &Preference {
        &self.clusters[cluster].virtual_preference
    }

    /// The member users of a cluster.
    pub fn cluster_members(&self, cluster: usize) -> &[UserId] {
        &self.clusters[cluster].members
    }

    /// Recomputes one cluster's virtual preference after a membership or
    /// preference change: `exact_common` (from a maintained [`Clustering`])
    /// is used directly for exact monitors, while approx monitors rebuild
    /// the Alg. 3 relation from the members' (already updated) preferences.
    ///
    /// The cluster frontier `P_U` is deliberately left as-is: any set of
    /// alive objects filtered under the new common relation is a sound
    /// filter — rejection still implies dominance for every member — and
    /// exactness rests on the per-member verify step (Lemma 4.6), not on
    /// `P_U` being the exact cluster frontier.
    fn refresh_virtual_preference(&mut self, cluster: usize, exact_common: Option<Preference>) {
        let virtual_preference = resolve_virtual_preference(
            &self.users,
            &self.clusters[cluster].members,
            self.approx,
            exact_common,
        );
        let state = &mut self.clusters[cluster];
        state.compiled = virtual_preference.compile();
        state.virtual_preference = virtual_preference;
    }

    /// Appends a new singleton cluster for `user`, whose filter frontier is
    /// exactly the member's own (already backfilled) frontier.
    fn push_singleton(&mut self, user: UserId) {
        let preference = self.users[user.index()].preference.as_ref().clone();
        let mut state = ClusterState::new(vec![user], preference);
        state.frontier = self.user_frontiers[user.index()].clone();
        self.clusters.push(state);
    }

    /// Procedure `updateParetoFrontierU` of Alg. 2: filters `object` through
    /// the cluster frontier. Returns `true` when the object survives (and
    /// has been added to `P_U`).
    fn update_cluster_frontier(
        cluster: &mut ClusterState,
        user_frontiers: &mut [Frontier],
        object: &Object,
        stats: &mut MonitorStats,
        deltas: &mut DeltaLog,
    ) -> bool {
        let mut is_pareto = true;
        let mut dominated: Vec<ObjectId> = Vec::new();
        for existing in cluster.frontier.values() {
            stats.record_comparison();
            match cluster.compiled.compare(object, existing) {
                Dominance::Dominates => dominated.push(existing.id()),
                Dominance::DominatedBy => {
                    is_pareto = false;
                    dominated.clear();
                    break;
                }
                // Identical or incomparable objects stay; identical objects
                // are resolved per user during verification.
                Dominance::Identical | Dominance::Incomparable => {}
            }
        }
        for id in &dominated {
            cluster.frontier.remove(id);
            // o ≻_U o' implies o ≻_c o' for every member (Def. 4.1), so o'
            // leaves every member's frontier too (Alg. 2, lines 4–6).
            for member in &cluster.members {
                if user_frontiers[member.index()].remove(id).is_some() {
                    deltas.leave(*member, *id);
                }
            }
        }
        if is_pareto {
            cluster.frontier.insert(object.id(), object.clone());
        }
        is_pareto
    }
}

impl ContinuousMonitor for FilterThenVerifyMonitor {
    fn process(&mut self, object: Object) -> Arrival {
        let timer = self.timers.arrival.clone();
        timed(timer.as_ref(), || {
            let mut targets = Vec::new();
            let mut deltas = DeltaLog::new();
            for cluster in &mut self.clusters {
                let survives = Self::update_cluster_frontier(
                    cluster,
                    &mut self.user_frontiers,
                    &object,
                    &mut self.stats,
                    &mut deltas,
                );
                if !survives {
                    continue;
                }
                // Verify against each member's own preference (Alg. 2, line 6).
                for member in &cluster.members {
                    let pref = self.users[member.index()].compiled.as_ref();
                    let update = update_pareto_frontier_traced(
                        pref,
                        &mut self.user_frontiers[member.index()],
                        &object,
                        &mut self.stats,
                    );
                    for evicted in &update.evicted {
                        deltas.leave(*member, *evicted);
                    }
                    if update.newly_inserted {
                        deltas.enter(*member, object.id());
                    }
                    if update.is_pareto {
                        targets.push(*member);
                    }
                }
            }
            targets.sort_unstable();
            self.stats.record_arrival(targets.len());
            let id = object.id();
            self.history.push(object);
            Arrival {
                object: id,
                target_users: targets,
                deltas: deltas.finish(),
            }
        })
    }

    fn frontier(&self, user: UserId) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.user_frontiers[user.index()].keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn num_users(&self) -> usize {
        self.users.len()
    }

    fn add_user(&mut self, preference: Preference) -> UserId {
        let user = UserId::from(self.users.len());
        // Widen the compaction universe before the replay (see
        // `crate::history` for the novel-preference caveat).
        self.history.observe(&preference);
        let interned = self.interner.intern(&preference);
        let timer = self.timers.backfill.clone();
        let frontier = timed(timer.as_ref(), || {
            backfill_frontier(&self.history, &interned.compiled, &mut self.stats)
        });
        self.users.push(interned);
        self.user_frontiers.push(frontier);
        let placement = match self.clustering.as_mut() {
            Some(clustering) => {
                clustering.insert_user(user, self.users[user.index()].preference.as_ref())
            }
            None => Placement::Singleton {
                cluster: self.clusters.len(),
            },
        };
        match placement {
            Placement::Joined { cluster, common } => {
                self.clusters[cluster].members.push(user);
                self.refresh_virtual_preference(cluster, Some(common));
            }
            Placement::Singleton { cluster } => {
                debug_assert_eq!(cluster, self.clusters.len());
                self.push_singleton(user);
            }
        }
        user
    }

    fn update_user(&mut self, user: UserId, preference: Preference) {
        let idx = user.index();
        assert!(idx < self.users.len(), "user {user} out of range");
        // Rebuild the user's own frontier by replaying the retained history
        // under the new preference (exact for compacting histories unless
        // the preference is genuinely novel, best-effort once a truncating
        // cap has bitten).
        self.history.observe(&preference);
        // Intern the new preference before releasing the old handle so an
        // update within the same distinct preference never recompiles.
        let interned = self.interner.intern(&preference);
        let timer = self.timers.backfill.clone();
        self.user_frontiers[idx] = timed(timer.as_ref(), || {
            backfill_frontier(&self.history, &interned.compiled, &mut self.stats)
        });
        let old = std::mem::replace(&mut self.users[idx], interned);
        self.interner.release(old.id);
        // Repair the clustering: stay put with a re-AND-folded common
        // relation, or move via local repair + re-insertion.
        let repair = plan_update(
            self.clustering.as_mut(),
            self.clusters.iter().map(|c| c.members.as_slice()),
            user,
            self.users[idx].preference.as_ref(),
        );
        match repair {
            UpdateRepair::Stay(cluster, exact_common) => {
                self.refresh_virtual_preference(cluster, exact_common);
            }
            UpdateRepair::Move {
                from,
                from_common,
                to,
                to_common,
            } => {
                self.clusters[from].members.retain(|&m| m != user);
                self.refresh_virtual_preference(from, from_common);
                self.clusters[to].members.push(user);
                self.refresh_virtual_preference(to, to_common);
            }
            UpdateRepair::MoveSingleton { from, from_common } => {
                self.clusters[from].members.retain(|&m| m != user);
                self.refresh_virtual_preference(from, from_common);
                self.push_singleton(user);
            }
            UpdateRepair::Detached => {}
        }
    }

    fn remove_user(&mut self, user: UserId) -> Option<UserId> {
        let idx = user.index();
        assert!(idx < self.users.len(), "user {user} out of range");
        let repair = plan_detach(
            self.clustering.as_mut(),
            self.clusters.iter().map(|c| c.members.as_slice()),
            user,
        );
        match repair {
            ClusterRepair::Drop(cluster) => {
                self.clusters.swap_remove(cluster);
            }
            ClusterRepair::Recompute(cluster, exact_common) => {
                self.clusters[cluster].members.retain(|&m| m != user);
                self.refresh_virtual_preference(cluster, exact_common);
            }
            ClusterRepair::Detached => {}
        }
        let last = self.users.len() - 1;
        let old = self.users.swap_remove(idx);
        self.interner.release(old.id);
        self.user_frontiers.swap_remove(idx);
        if idx == last {
            return None;
        }
        let moved = UserId::from(last);
        renumber_member(
            self.clustering.as_mut(),
            self.clusters.iter_mut().map(|c| &mut c.members),
            moved,
            user,
        );
        Some(moved)
    }

    fn observe_preference(&mut self, preference: &Preference) {
        self.history.observe(preference);
    }

    fn set_timers(&mut self, timers: MonitorTimers) {
        self.history.set_sweep_timer(timers.sweep.clone());
        self.timers = timers;
    }

    fn stats(&self) -> MonitorStats {
        let mut stats = self.stats;
        stats.history_objects = self.history.len() as u64;
        stats.history_evicted = self.history.evicted();
        stats.history_bytes = self.history.approx_bytes();
        stats.distinct_preferences = self.interner.distinct() as u64;
        stats.preference_bytes = self.interner.approx_bytes() as u64;
        stats
    }

    fn export_state(&self) -> MonitorState {
        MonitorState {
            history: Some(self.history.export_state()),
            window: None,
            stats: self.stats,
        }
    }

    fn import_state(&mut self, state: MonitorState) {
        if let Some(history) = state.history {
            self.history.import_state(history);
        }
    }

    fn restore_stats(&mut self, stats: MonitorStats) {
        self.stats.arrivals = stats.arrivals;
        self.stats.expirations = stats.expirations;
        self.stats.comparisons = stats.comparisons;
        self.stats.notifications = stats.notifications;
    }

    fn member_preferences(&self) -> Vec<Preference> {
        self.users
            .iter()
            .map(|u| u.preference.as_ref().clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineMonitor;
    use pm_cluster::{cluster_users, ClusteringConfig, ExactMeasure};
    use pm_model::{AttrId, ValueId};

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn a(i: u32) -> AttrId {
        AttrId::new(i)
    }

    fn obj(id: u64, vals: &[u32]) -> Object {
        Object::new(ObjectId::new(id), vals.iter().map(|&x| v(x)).collect())
    }

    /// Same laptop users as the baseline tests (Tables 1 & 2, c1 and c2).
    fn laptop_users() -> Vec<Preference> {
        let mut c1 = Preference::new(3);
        c1.prefer(a(0), v(2), v(1));
        c1.prefer(a(0), v(1), v(3));
        c1.prefer(a(0), v(1), v(4));
        c1.prefer(a(0), v(1), v(0));
        c1.prefer(a(1), v(0), v(1));
        c1.prefer(a(1), v(1), v(4));
        c1.prefer(a(1), v(1), v(2));
        c1.prefer(a(1), v(0), v(3));
        c1.prefer(a(2), v(1), v(2));
        c1.prefer(a(2), v(1), v(3));
        c1.prefer(a(2), v(2), v(0));
        c1.prefer(a(2), v(3), v(0));

        let mut c2 = Preference::new(3);
        c2.prefer(a(0), v(2), v(1));
        c2.prefer(a(0), v(2), v(3));
        c2.prefer(a(0), v(3), v(4));
        c2.prefer(a(0), v(4), v(0));
        c2.prefer(a(0), v(1), v(0));
        c2.prefer(a(1), v(0), v(4));
        c2.prefer(a(1), v(1), v(4));
        c2.prefer(a(1), v(4), v(3));
        c2.prefer(a(1), v(1), v(2));
        c2.prefer(a(2), v(3), v(2));
        c2.prefer(a(2), v(2), v(1));
        c2.prefer(a(2), v(1), v(0));
        vec![c1, c2]
    }

    fn laptop_objects() -> Vec<Object> {
        vec![
            obj(1, &[1, 0, 0]),
            obj(2, &[2, 0, 1]),
            obj(3, &[2, 2, 1]),
            obj(4, &[4, 4, 1]),
            obj(5, &[0, 2, 3]),
            obj(6, &[1, 3, 0]),
            obj(7, &[0, 1, 3]),
            obj(8, &[1, 0, 1]),
            obj(9, &[4, 3, 0]),
            obj(10, &[0, 1, 2]),
            obj(11, &[0, 4, 2]),
            obj(12, &[0, 2, 2]),
            obj(13, &[2, 3, 1]),
            obj(14, &[3, 3, 0]),
        ]
    }

    fn one_cluster(users: &[Preference]) -> Vec<(Vec<UserId>, Preference)> {
        vec![(
            (0..users.len()).map(UserId::from).collect(),
            Preference::common_of(users.iter()),
        )]
    }

    #[test]
    fn matches_baseline_on_laptop_example() {
        let users = laptop_users();
        let mut baseline = BaselineMonitor::new(users.clone());
        let mut ftv =
            FilterThenVerifyMonitor::with_virtual_preferences(users.clone(), one_cluster(&users));
        for o in laptop_objects() {
            let a = baseline.process(o.clone());
            let b = ftv.process(o);
            assert_eq!(a.target_users, b.target_users, "object {}", a.object);
        }
        for u in 0..users.len() {
            assert_eq!(
                baseline.frontier(UserId::from(u)),
                ftv.frontier(UserId::from(u))
            );
        }
    }

    #[test]
    fn example_4_8_cluster_frontier_and_o15() {
        let users = laptop_users();
        let mut ftv =
            FilterThenVerifyMonitor::with_virtual_preferences(users.clone(), one_cluster(&users));
        for o in laptop_objects() {
            ftv.process(o);
        }
        // Before o15, P_U ⊇ P_c1 ∪ P_c2 (Theorem 4.5).
        let pu = ftv.cluster_frontier(0);
        for u in 0..users.len() {
            for o in ftv.frontier(UserId::from(u)) {
                assert!(pu.contains(&o), "P_U must contain {o} of user {u}");
            }
        }
        // o15 is filtered through the cluster and targets only c2.
        let arrival = ftv.process(obj(15, &[3, 1, 3]));
        assert_eq!(arrival.target_users, vec![UserId::new(1)]);
        // o16 is dominated at the cluster level: no verification reaches users.
        let comparisons_before = ftv.stats().comparisons;
        let arrival16 = ftv.process(obj(16, &[3, 4, 0]));
        assert!(arrival16.target_users.is_empty());
        // The filter rejected o16, so at most |P_U| comparisons were spent on
        // it and none per user.
        let spent = ftv.stats().comparisons - comparisons_before;
        assert!(spent <= ftv.cluster_frontier(0).len() as u64 + 1);
    }

    #[test]
    fn theorem_4_5_cluster_frontier_superset_invariant() {
        let users = laptop_users();
        let mut ftv =
            FilterThenVerifyMonitor::with_virtual_preferences(users.clone(), one_cluster(&users));
        for o in laptop_objects() {
            ftv.process(o);
            let pu = ftv.cluster_frontier(0);
            for u in 0..users.len() {
                for id in ftv.frontier(UserId::from(u)) {
                    assert!(pu.contains(&id));
                }
            }
        }
    }

    #[test]
    fn clustering_pipeline_matches_baseline() {
        let users = laptop_users();
        let outcome = cluster_users(
            &users,
            ClusteringConfig::Exact {
                measure: ExactMeasure::WeightedJaccard,
                branch_cut: 0.0,
            },
        );
        let mut baseline = BaselineMonitor::new(users.clone());
        let mut ftv = FilterThenVerifyMonitor::new(users.clone(), &outcome.clusters);
        for o in laptop_objects() {
            let a = baseline.process(o.clone());
            let b = ftv.process(o);
            assert_eq!(a.target_users, b.target_users);
        }
        for u in 0..users.len() {
            assert_eq!(
                baseline.frontier(UserId::from(u)),
                ftv.frontier(UserId::from(u))
            );
        }
    }

    #[test]
    fn singleton_clusters_degenerate_to_baseline() {
        let users = laptop_users();
        let clusters: Vec<(Vec<UserId>, Preference)> = users
            .iter()
            .enumerate()
            .map(|(i, p)| (vec![UserId::from(i)], p.clone()))
            .collect();
        let mut baseline = BaselineMonitor::new(users.clone());
        let mut ftv = FilterThenVerifyMonitor::with_virtual_preferences(users.clone(), clusters);
        for o in laptop_objects() {
            let a = baseline.process(o.clone());
            let b = ftv.process(o);
            assert_eq!(a.target_users, b.target_users);
        }
    }

    #[test]
    fn approx_clusters_give_subset_frontiers() {
        // Theorem 6.5 / Lemma 6.6: with approximate common preferences the
        // per-user frontiers can only lose objects, never gain ones outside
        // the exact frontier union... more precisely P̂_c ⊆ P̂_U ⊆ P_U.
        let users = laptop_users();
        let outcome = cluster_users(
            &users,
            ClusteringConfig::Exact {
                measure: ExactMeasure::WeightedJaccard,
                branch_cut: 0.0,
            },
        );
        let mut exact = FilterThenVerifyMonitor::new(users.clone(), &outcome.clusters);
        let mut approx = FilterThenVerifyMonitor::with_approx_clusters(
            users.clone(),
            &outcome.clusters,
            ApproxConfig::new(64, 0.4),
        );
        for o in laptop_objects() {
            exact.process(o.clone());
            approx.process(o);
        }
        let exact_pu = exact.cluster_frontier(0);
        let approx_pu = approx.cluster_frontier(0);
        for id in &approx_pu {
            assert!(exact_pu.contains(id), "P̂_U ⊆ P_U violated at {id}");
        }
        for u in 0..users.len() {
            let approx_pc = approx.frontier(UserId::from(u));
            for id in &approx_pc {
                assert!(approx_pu.contains(id), "P̂_c ⊆ P̂_U violated at {id}");
            }
        }
    }

    #[test]
    fn approx_with_total_support_matches_exact() {
        // θ2 = 1.0 keeps only true common preference tuples, so the
        // approximate monitor degenerates to the exact one.
        let users = laptop_users();
        let outcome = cluster_users(
            &users,
            ClusteringConfig::Exact {
                measure: ExactMeasure::Jaccard,
                branch_cut: 0.0,
            },
        );
        let mut exact = FilterThenVerifyMonitor::new(users.clone(), &outcome.clusters);
        let mut approx = FilterThenVerifyMonitor::with_approx_clusters(
            users.clone(),
            &outcome.clusters,
            ApproxConfig::new(1024, 1.0),
        );
        for o in laptop_objects() {
            let a = exact.process(o.clone());
            let b = approx.process(o);
            assert_eq!(a.target_users, b.target_users);
        }
    }

    #[test]
    fn filter_saves_comparisons_compared_to_baseline() {
        let users = laptop_users();
        let mut baseline = BaselineMonitor::new(users.clone());
        let mut ftv =
            FilterThenVerifyMonitor::with_virtual_preferences(users.clone(), one_cluster(&users));
        let mut objects = laptop_objects();
        objects.push(obj(15, &[3, 1, 3]));
        objects.push(obj(16, &[3, 4, 0]));
        for o in objects {
            baseline.process(o.clone());
            ftv.process(o);
        }
        // The point of the filter is fewer per-user comparisons for objects
        // rejected at the cluster level; with only two users the totals are
        // close, so just require the filter not to blow up the cost.
        assert!(ftv.stats().comparisons <= 2 * baseline.stats().comparisons);
        assert_eq!(ftv.num_clusters(), 1);
        assert_eq!(ftv.cluster_members(0).len(), 2);
        assert!(ftv.virtual_preference(0).total_pairs() > 0);
    }

    #[test]
    fn dynamic_membership_stays_exact_with_maintained_clustering() {
        use pm_cluster::Clustering;
        let users = laptop_users();
        let clustering = Clustering::new(&users, ExactMeasure::Jaccard, 0.2);
        let mut ftv = FilterThenVerifyMonitor::with_clustering(users.clone(), clustering);
        let objects = laptop_objects();
        // Half the stream, then register a third user (same prefs as c1).
        for o in &objects[..7] {
            ftv.process(o.clone());
        }
        let added = ftv.add_user(users[0].clone());
        assert_eq!(added, UserId::new(2));
        for o in &objects[7..] {
            ftv.process(o.clone());
        }
        // The backfilled + continued frontier equals a from-start baseline.
        let mut baseline =
            BaselineMonitor::new(vec![users[0].clone(), users[1].clone(), users[0].clone()]);
        for o in &objects {
            baseline.process(o.clone());
        }
        for u in 0..3usize {
            assert_eq!(
                ftv.frontier(UserId::from(u)),
                baseline.frontier(UserId::from(u)),
                "user {u}"
            );
        }
        // Every cluster's common relation is the intersection of its
        // members' preferences, and no cluster is empty.
        let prefs = [users[0].clone(), users[1].clone(), users[0].clone()];
        for k in 0..ftv.num_clusters() {
            let members = ftv.cluster_members(k).to_vec();
            assert!(!members.is_empty());
            let expected = Preference::common_of(members.iter().map(|m| &prefs[m.index()]));
            let got = ftv.virtual_preference(k);
            for attr in 0..expected.arity() {
                let attr = pm_model::AttrId::from(attr);
                let want: std::collections::HashSet<_> = expected.relation(attr).pairs().collect();
                let have: std::collections::HashSet<_> = got.relation(attr).pairs().collect();
                assert_eq!(have, want, "cluster {k} attribute {attr}");
            }
        }
        // Unregister c2 (user 1): user 2 is renumbered to 1 and results
        // still match a baseline over the surviving users.
        assert_eq!(ftv.remove_user(UserId::new(1)), Some(UserId::new(2)));
        let arrival = ftv.process(obj(15, &[3, 1, 3]));
        let mut survivors = BaselineMonitor::new(vec![users[0].clone(), users[0].clone()]);
        let mut all = objects.clone();
        all.push(obj(15, &[3, 1, 3]));
        let mut expected_arrival = None;
        for o in &all {
            expected_arrival = Some(survivors.process(o.clone()));
        }
        assert_eq!(arrival, expected_arrival.unwrap());
        for u in 0..2usize {
            assert_eq!(
                ftv.frontier(UserId::from(u)),
                survivors.frontier(UserId::from(u)),
                "user {u}"
            );
        }
    }

    #[test]
    fn update_user_with_maintained_clustering_stays_exact() {
        use pm_cluster::Clustering;
        let users = laptop_users();
        // A branch cut of 0.2 keeps c1 and c2 clustered together.
        let clustering = Clustering::new(&users, ExactMeasure::Jaccard, 0.2);
        let mut ftv = FilterThenVerifyMonitor::with_clustering(users.clone(), clustering);
        let objects = laptop_objects();
        for o in &objects[..7] {
            ftv.process(o.clone());
        }
        // c1 adopts c2's preference mid-stream (in place, id 0 unchanged).
        ftv.update_user(UserId::new(0), users[1].clone());
        assert_eq!(ftv.num_users(), 2);
        for o in &objects[7..] {
            ftv.process(o.clone());
        }
        // Frontiers match a from-start baseline over the final preferences.
        let mut baseline = BaselineMonitor::new(vec![users[1].clone(), users[1].clone()]);
        for o in &objects {
            baseline.process(o.clone());
        }
        for u in 0..2usize {
            assert_eq!(
                ftv.frontier(UserId::from(u)),
                baseline.frontier(UserId::from(u)),
                "user {u}"
            );
        }
        // Cluster invariants hold: common = intersection, no empty cluster.
        let prefs = [users[1].clone(), users[1].clone()];
        for k in 0..ftv.num_clusters() {
            let members = ftv.cluster_members(k).to_vec();
            assert!(!members.is_empty());
            let expected = Preference::common_of(members.iter().map(|m| &prefs[m.index()]));
            let got = ftv.virtual_preference(k);
            for attr in 0..expected.arity() {
                let attr = pm_model::AttrId::from(attr);
                let want: std::collections::HashSet<_> = expected.relation(attr).pairs().collect();
                let have: std::collections::HashSet<_> = got.relation(attr).pairs().collect();
                assert_eq!(have, want, "cluster {k} attribute {attr}");
            }
        }
    }

    #[test]
    fn update_that_leaves_the_cluster_moves_without_renumbering() {
        use pm_cluster::Clustering;
        let users = vec![laptop_users()[0].clone(), laptop_users()[0].clone()];
        // Identical preferences cluster together under any sane cut.
        let clustering = Clustering::new(&users, ExactMeasure::Jaccard, 0.5);
        let mut ftv = FilterThenVerifyMonitor::with_clustering(users.clone(), clustering);
        assert_eq!(ftv.num_clusters(), 1);
        for o in laptop_objects() {
            ftv.process(o);
        }
        // User 1 switches to a preference over values nobody else mentions:
        // similarity collapses, the user moves out into a singleton.
        let mut alien = Preference::new(3);
        alien.prefer(a(0), v(40), v(41));
        ftv.update_user(UserId::new(1), alien.clone());
        assert_eq!(ftv.num_clusters(), 2);
        assert_eq!(ftv.num_users(), 2);
        // No renumbering: user 0 still holds its original preference.
        assert_eq!(
            ftv.preference(UserId::new(0)).total_pairs(),
            users[0].total_pairs()
        );
        assert_eq!(ftv.preference(UserId::new(1)).total_pairs(), 1);
        // Both users' frontiers match a from-start baseline.
        let mut baseline = BaselineMonitor::new(vec![users[0].clone(), alien]);
        for o in laptop_objects() {
            baseline.process(o);
        }
        for u in 0..2usize {
            assert_eq!(
                ftv.frontier(UserId::from(u)),
                baseline.frontier(UserId::from(u)),
                "user {u}"
            );
        }
    }

    #[test]
    fn update_on_hand_built_clusters_stays_put_and_exact() {
        let users = laptop_users();
        let mut ftv =
            FilterThenVerifyMonitor::with_virtual_preferences(users.clone(), one_cluster(&users));
        let objects = laptop_objects();
        for o in &objects[..7] {
            ftv.process(o.clone());
        }
        ftv.update_user(UserId::new(1), users[0].clone());
        assert_eq!(ftv.num_clusters(), 1);
        for o in &objects[7..] {
            ftv.process(o.clone());
        }
        let mut baseline = BaselineMonitor::new(vec![users[0].clone(), users[0].clone()]);
        for o in &objects {
            baseline.process(o.clone());
        }
        for u in 0..2usize {
            assert_eq!(
                ftv.frontier(UserId::from(u)),
                baseline.frontier(UserId::from(u)),
                "user {u}"
            );
        }
    }

    #[test]
    fn history_cap_applies_to_update_backfill() {
        let users = laptop_users();
        let mut ftv =
            FilterThenVerifyMonitor::with_virtual_preferences(users.clone(), one_cluster(&users))
                .with_history_limit(Some(3));
        for o in laptop_objects() {
            ftv.process(o);
        }
        assert_eq!(ftv.history_len(), 3);
        // The update replays only the retained suffix (ids 12..=14).
        ftv.update_user(UserId::new(0), users[1].clone());
        for id in ftv.frontier(UserId::new(0)) {
            assert!(id.raw() >= 12, "backfill saw a truncated object {id}");
        }
    }

    #[test]
    fn compacting_history_keeps_ftv_backfill_exact_for_observed_preferences() {
        let users = laptop_users();
        let mut ftv =
            FilterThenVerifyMonitor::with_virtual_preferences(users.clone(), one_cluster(&users))
                .with_history(crate::history::HistoryMode::Compact { cap: None });
        let mut reference = BaselineMonitor::new(users.clone());
        for o in laptop_objects() {
            ftv.process(o.clone());
            reference.process(o);
        }
        ftv.compact_history_now();
        assert!(ftv.history_len() < 14, "compaction must drop something");
        assert!(ftv.history_evicted() > 0);
        // Registering a user with an observed preference backfills exactly
        // against the full stream, and an in-place update to the other
        // observed preference does too.
        let added = ftv.add_user(users[0].clone());
        let ref_added = reference.add_user(users[0].clone());
        assert_eq!(ftv.frontier(added), reference.frontier(ref_added));
        ftv.update_user(UserId::new(1), users[0].clone());
        reference.update_user(UserId::new(1), users[0].clone());
        assert_eq!(
            ftv.frontier(UserId::new(1)),
            reference.frontier(UserId::new(1))
        );
        let stats = ftv.stats();
        assert_eq!(stats.history_objects, ftv.history_len() as u64);
        assert_eq!(stats.history_evicted, ftv.history_evicted());
    }

    #[test]
    fn empty_cluster_list_yields_no_targets() {
        let users = laptop_users();
        let mut ftv = FilterThenVerifyMonitor::with_virtual_preferences(users, vec![]);
        let arrival = ftv.process(obj(1, &[1, 0, 0]));
        assert!(arrival.target_users.is_empty());
        assert_eq!(ftv.num_clusters(), 0);
    }
}
