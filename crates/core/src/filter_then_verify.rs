//! Algorithm 2 — `FilterThenVerify` (and its approximate variant,
//! `FilterThenVerifyApprox`, Sec. 6).
//!
//! Users are grouped into clusters of similar preferences. Each cluster `U`
//! is represented by a *virtual user* whose preference relation is the
//! common (or approximate common) preference relation of the members. The
//! cluster maintains a shared Pareto frontier `P_U` which, by Theorem 4.5,
//! is a superset of every member's frontier: an arriving object dominated
//! within `P_U` can be discarded for all members at once (filter step); an
//! object that survives is verified against each member's own frontier
//! (verify step).

use pm_model::{Object, ObjectId, UserId};
use pm_porder::{CompiledPreference, Dominance, Preference};

use pm_cluster::{approx_common_preference, ApproxConfig, Cluster};

use crate::baseline::{update_pareto_frontier, Frontier};
use crate::monitor::{Arrival, ContinuousMonitor};
use crate::stats::MonitorStats;

/// One cluster's shared state: the virtual user's preference and frontier.
#[derive(Debug, Clone)]
struct ClusterState {
    members: Vec<UserId>,
    /// Build-time form of the virtual user's preference (introspection).
    virtual_preference: Preference,
    /// Bitset form the filter step actually runs on.
    compiled: CompiledPreference,
    frontier: Frontier,
}

impl ClusterState {
    fn new(members: Vec<UserId>, virtual_preference: Preference) -> Self {
        let compiled = virtual_preference.compile();
        Self {
            members,
            virtual_preference,
            compiled,
            frontier: Frontier::new(),
        }
    }
}

/// Algorithm 2: shared-computation monitoring via user clusters.
///
/// The same type implements both `FilterThenVerify` (exact common
/// preference relations) and `FilterThenVerifyApprox` (approximate common
/// preference relations built by Alg. 3) — the algorithm is identical, only
/// the virtual users' preferences differ.
#[derive(Debug, Clone)]
pub struct FilterThenVerifyMonitor {
    /// Build-time per-user preferences (introspection, approx construction).
    preferences: Vec<Preference>,
    /// Bitset form the verify step runs on, indexed like `preferences`.
    compiled: Vec<CompiledPreference>,
    user_frontiers: Vec<Frontier>,
    clusters: Vec<ClusterState>,
    stats: MonitorStats,
}

impl FilterThenVerifyMonitor {
    /// Creates a monitor from per-user preferences and clusters whose
    /// virtual users carry the *exact* common preference relations
    /// (FilterThenVerify).
    pub fn new(preferences: Vec<Preference>, clusters: &[Cluster]) -> Self {
        let states = clusters
            .iter()
            .map(|c| ClusterState::new(c.members.clone(), c.common.clone()))
            .collect();
        Self::from_states(preferences, states)
    }

    /// Creates a monitor whose virtual users carry *approximate* common
    /// preference relations built with Alg. 3 under `config`
    /// (FilterThenVerifyApprox).
    pub fn with_approx_clusters(
        preferences: Vec<Preference>,
        clusters: &[Cluster],
        config: ApproxConfig,
    ) -> Self {
        let states = clusters
            .iter()
            .map(|c| {
                let members = c.members.clone();
                let virtual_preference = approx_common_preference(
                    members.iter().map(|u| &preferences[u.index()]),
                    config,
                );
                ClusterState::new(members, virtual_preference)
            })
            .collect();
        Self::from_states(preferences, states)
    }

    /// Creates a monitor with explicitly provided virtual-user preferences,
    /// one per cluster. Useful for tests and ablations.
    pub fn with_virtual_preferences(
        preferences: Vec<Preference>,
        clusters: Vec<(Vec<UserId>, Preference)>,
    ) -> Self {
        let states = clusters
            .into_iter()
            .map(|(members, virtual_preference)| ClusterState::new(members, virtual_preference))
            .collect();
        Self::from_states(preferences, states)
    }

    fn from_states(preferences: Vec<Preference>, clusters: Vec<ClusterState>) -> Self {
        let compiled = preferences.iter().map(Preference::compile).collect();
        let user_frontiers = vec![Frontier::new(); preferences.len()];
        Self {
            preferences,
            compiled,
            user_frontiers,
            clusters,
            stats: MonitorStats::new(),
        }
    }

    /// Number of clusters (`k` in the paper's cost model).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The cluster-level ("virtual user") frontier `P_U`, sorted by id.
    pub fn cluster_frontier(&self, cluster: usize) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.clusters[cluster].frontier.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The virtual preference used by a cluster (common or approximate).
    pub fn virtual_preference(&self, cluster: usize) -> &Preference {
        &self.clusters[cluster].virtual_preference
    }

    /// The member users of a cluster.
    pub fn cluster_members(&self, cluster: usize) -> &[UserId] {
        &self.clusters[cluster].members
    }

    /// Procedure `updateParetoFrontierU` of Alg. 2: filters `object` through
    /// the cluster frontier. Returns `true` when the object survives (and
    /// has been added to `P_U`).
    fn update_cluster_frontier(
        cluster: &mut ClusterState,
        user_frontiers: &mut [Frontier],
        object: &Object,
        stats: &mut MonitorStats,
    ) -> bool {
        let mut is_pareto = true;
        let mut dominated: Vec<ObjectId> = Vec::new();
        for existing in cluster.frontier.values() {
            stats.record_comparison();
            match cluster.compiled.compare(object, existing) {
                Dominance::Dominates => dominated.push(existing.id()),
                Dominance::DominatedBy => {
                    is_pareto = false;
                    dominated.clear();
                    break;
                }
                // Identical or incomparable objects stay; identical objects
                // are resolved per user during verification.
                Dominance::Identical | Dominance::Incomparable => {}
            }
        }
        for id in &dominated {
            cluster.frontier.remove(id);
            // o ≻_U o' implies o ≻_c o' for every member (Def. 4.1), so o'
            // leaves every member's frontier too (Alg. 2, lines 4–6).
            for member in &cluster.members {
                user_frontiers[member.index()].remove(id);
            }
        }
        if is_pareto {
            cluster.frontier.insert(object.id(), object.clone());
        }
        is_pareto
    }
}

impl ContinuousMonitor for FilterThenVerifyMonitor {
    fn process(&mut self, object: Object) -> Arrival {
        let mut targets = Vec::new();
        for cluster in &mut self.clusters {
            let survives = Self::update_cluster_frontier(
                cluster,
                &mut self.user_frontiers,
                &object,
                &mut self.stats,
            );
            if !survives {
                continue;
            }
            // Verify against each member's own preference (Alg. 2, line 6).
            for member in &cluster.members {
                let pref = &self.compiled[member.index()];
                if update_pareto_frontier(
                    pref,
                    &mut self.user_frontiers[member.index()],
                    &object,
                    &mut self.stats,
                ) {
                    targets.push(*member);
                }
            }
        }
        targets.sort_unstable();
        self.stats.record_arrival(targets.len());
        Arrival {
            object: object.id(),
            target_users: targets,
        }
    }

    fn frontier(&self, user: UserId) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.user_frontiers[user.index()].keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn num_users(&self) -> usize {
        self.preferences.len()
    }

    fn stats(&self) -> MonitorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineMonitor;
    use pm_cluster::{cluster_users, ClusteringConfig, ExactMeasure};
    use pm_model::{AttrId, ValueId};

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn a(i: u32) -> AttrId {
        AttrId::new(i)
    }

    fn obj(id: u64, vals: &[u32]) -> Object {
        Object::new(ObjectId::new(id), vals.iter().map(|&x| v(x)).collect())
    }

    /// Same laptop users as the baseline tests (Tables 1 & 2, c1 and c2).
    fn laptop_users() -> Vec<Preference> {
        let mut c1 = Preference::new(3);
        c1.prefer(a(0), v(2), v(1));
        c1.prefer(a(0), v(1), v(3));
        c1.prefer(a(0), v(1), v(4));
        c1.prefer(a(0), v(1), v(0));
        c1.prefer(a(1), v(0), v(1));
        c1.prefer(a(1), v(1), v(4));
        c1.prefer(a(1), v(1), v(2));
        c1.prefer(a(1), v(0), v(3));
        c1.prefer(a(2), v(1), v(2));
        c1.prefer(a(2), v(1), v(3));
        c1.prefer(a(2), v(2), v(0));
        c1.prefer(a(2), v(3), v(0));

        let mut c2 = Preference::new(3);
        c2.prefer(a(0), v(2), v(1));
        c2.prefer(a(0), v(2), v(3));
        c2.prefer(a(0), v(3), v(4));
        c2.prefer(a(0), v(4), v(0));
        c2.prefer(a(0), v(1), v(0));
        c2.prefer(a(1), v(0), v(4));
        c2.prefer(a(1), v(1), v(4));
        c2.prefer(a(1), v(4), v(3));
        c2.prefer(a(1), v(1), v(2));
        c2.prefer(a(2), v(3), v(2));
        c2.prefer(a(2), v(2), v(1));
        c2.prefer(a(2), v(1), v(0));
        vec![c1, c2]
    }

    fn laptop_objects() -> Vec<Object> {
        vec![
            obj(1, &[1, 0, 0]),
            obj(2, &[2, 0, 1]),
            obj(3, &[2, 2, 1]),
            obj(4, &[4, 4, 1]),
            obj(5, &[0, 2, 3]),
            obj(6, &[1, 3, 0]),
            obj(7, &[0, 1, 3]),
            obj(8, &[1, 0, 1]),
            obj(9, &[4, 3, 0]),
            obj(10, &[0, 1, 2]),
            obj(11, &[0, 4, 2]),
            obj(12, &[0, 2, 2]),
            obj(13, &[2, 3, 1]),
            obj(14, &[3, 3, 0]),
        ]
    }

    fn one_cluster(users: &[Preference]) -> Vec<(Vec<UserId>, Preference)> {
        vec![(
            (0..users.len()).map(UserId::from).collect(),
            Preference::common_of(users.iter()),
        )]
    }

    #[test]
    fn matches_baseline_on_laptop_example() {
        let users = laptop_users();
        let mut baseline = BaselineMonitor::new(users.clone());
        let mut ftv =
            FilterThenVerifyMonitor::with_virtual_preferences(users.clone(), one_cluster(&users));
        for o in laptop_objects() {
            let a = baseline.process(o.clone());
            let b = ftv.process(o);
            assert_eq!(a.target_users, b.target_users, "object {}", a.object);
        }
        for u in 0..users.len() {
            assert_eq!(
                baseline.frontier(UserId::from(u)),
                ftv.frontier(UserId::from(u))
            );
        }
    }

    #[test]
    fn example_4_8_cluster_frontier_and_o15() {
        let users = laptop_users();
        let mut ftv =
            FilterThenVerifyMonitor::with_virtual_preferences(users.clone(), one_cluster(&users));
        for o in laptop_objects() {
            ftv.process(o);
        }
        // Before o15, P_U ⊇ P_c1 ∪ P_c2 (Theorem 4.5).
        let pu = ftv.cluster_frontier(0);
        for u in 0..users.len() {
            for o in ftv.frontier(UserId::from(u)) {
                assert!(pu.contains(&o), "P_U must contain {o} of user {u}");
            }
        }
        // o15 is filtered through the cluster and targets only c2.
        let arrival = ftv.process(obj(15, &[3, 1, 3]));
        assert_eq!(arrival.target_users, vec![UserId::new(1)]);
        // o16 is dominated at the cluster level: no verification reaches users.
        let comparisons_before = ftv.stats().comparisons;
        let arrival16 = ftv.process(obj(16, &[3, 4, 0]));
        assert!(arrival16.target_users.is_empty());
        // The filter rejected o16, so at most |P_U| comparisons were spent on
        // it and none per user.
        let spent = ftv.stats().comparisons - comparisons_before;
        assert!(spent <= ftv.cluster_frontier(0).len() as u64 + 1);
    }

    #[test]
    fn theorem_4_5_cluster_frontier_superset_invariant() {
        let users = laptop_users();
        let mut ftv =
            FilterThenVerifyMonitor::with_virtual_preferences(users.clone(), one_cluster(&users));
        for o in laptop_objects() {
            ftv.process(o);
            let pu = ftv.cluster_frontier(0);
            for u in 0..users.len() {
                for id in ftv.frontier(UserId::from(u)) {
                    assert!(pu.contains(&id));
                }
            }
        }
    }

    #[test]
    fn clustering_pipeline_matches_baseline() {
        let users = laptop_users();
        let outcome = cluster_users(
            &users,
            ClusteringConfig::Exact {
                measure: ExactMeasure::WeightedJaccard,
                branch_cut: 0.0,
            },
        );
        let mut baseline = BaselineMonitor::new(users.clone());
        let mut ftv = FilterThenVerifyMonitor::new(users.clone(), &outcome.clusters);
        for o in laptop_objects() {
            let a = baseline.process(o.clone());
            let b = ftv.process(o);
            assert_eq!(a.target_users, b.target_users);
        }
        for u in 0..users.len() {
            assert_eq!(
                baseline.frontier(UserId::from(u)),
                ftv.frontier(UserId::from(u))
            );
        }
    }

    #[test]
    fn singleton_clusters_degenerate_to_baseline() {
        let users = laptop_users();
        let clusters: Vec<(Vec<UserId>, Preference)> = users
            .iter()
            .enumerate()
            .map(|(i, p)| (vec![UserId::from(i)], p.clone()))
            .collect();
        let mut baseline = BaselineMonitor::new(users.clone());
        let mut ftv = FilterThenVerifyMonitor::with_virtual_preferences(users.clone(), clusters);
        for o in laptop_objects() {
            let a = baseline.process(o.clone());
            let b = ftv.process(o);
            assert_eq!(a.target_users, b.target_users);
        }
    }

    #[test]
    fn approx_clusters_give_subset_frontiers() {
        // Theorem 6.5 / Lemma 6.6: with approximate common preferences the
        // per-user frontiers can only lose objects, never gain ones outside
        // the exact frontier union... more precisely P̂_c ⊆ P̂_U ⊆ P_U.
        let users = laptop_users();
        let outcome = cluster_users(
            &users,
            ClusteringConfig::Exact {
                measure: ExactMeasure::WeightedJaccard,
                branch_cut: 0.0,
            },
        );
        let mut exact = FilterThenVerifyMonitor::new(users.clone(), &outcome.clusters);
        let mut approx = FilterThenVerifyMonitor::with_approx_clusters(
            users.clone(),
            &outcome.clusters,
            ApproxConfig::new(64, 0.4),
        );
        for o in laptop_objects() {
            exact.process(o.clone());
            approx.process(o);
        }
        let exact_pu = exact.cluster_frontier(0);
        let approx_pu = approx.cluster_frontier(0);
        for id in &approx_pu {
            assert!(exact_pu.contains(id), "P̂_U ⊆ P_U violated at {id}");
        }
        for u in 0..users.len() {
            let approx_pc = approx.frontier(UserId::from(u));
            for id in &approx_pc {
                assert!(approx_pu.contains(id), "P̂_c ⊆ P̂_U violated at {id}");
            }
        }
    }

    #[test]
    fn approx_with_total_support_matches_exact() {
        // θ2 = 1.0 keeps only true common preference tuples, so the
        // approximate monitor degenerates to the exact one.
        let users = laptop_users();
        let outcome = cluster_users(
            &users,
            ClusteringConfig::Exact {
                measure: ExactMeasure::Jaccard,
                branch_cut: 0.0,
            },
        );
        let mut exact = FilterThenVerifyMonitor::new(users.clone(), &outcome.clusters);
        let mut approx = FilterThenVerifyMonitor::with_approx_clusters(
            users.clone(),
            &outcome.clusters,
            ApproxConfig::new(1024, 1.0),
        );
        for o in laptop_objects() {
            let a = exact.process(o.clone());
            let b = approx.process(o);
            assert_eq!(a.target_users, b.target_users);
        }
    }

    #[test]
    fn filter_saves_comparisons_compared_to_baseline() {
        let users = laptop_users();
        let mut baseline = BaselineMonitor::new(users.clone());
        let mut ftv =
            FilterThenVerifyMonitor::with_virtual_preferences(users.clone(), one_cluster(&users));
        let mut objects = laptop_objects();
        objects.push(obj(15, &[3, 1, 3]));
        objects.push(obj(16, &[3, 4, 0]));
        for o in objects {
            baseline.process(o.clone());
            ftv.process(o);
        }
        // The point of the filter is fewer per-user comparisons for objects
        // rejected at the cluster level; with only two users the totals are
        // close, so just require the filter not to blow up the cost.
        assert!(ftv.stats().comparisons <= 2 * baseline.stats().comparisons);
        assert_eq!(ftv.num_clusters(), 1);
        assert_eq!(ftv.cluster_members(0).len(), 2);
        assert!(ftv.virtual_preference(0).total_pairs() > 0);
    }

    #[test]
    fn empty_cluster_list_yields_no_targets() {
        let users = laptop_users();
        let mut ftv = FilterThenVerifyMonitor::with_virtual_preferences(users, vec![]);
        let arrival = ftv.process(obj(1, &[1, 0, 0]));
        assert!(arrival.target_users.is_empty());
        assert_eq!(ftv.num_clusters(), 0);
    }
}
