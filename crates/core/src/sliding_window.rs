//! Sliding-window monitoring (Section 7): `BaselineSW` (Alg. 4) and
//! `FilterThenVerifySW` / `FilterThenVerifyApproxSW` (Alg. 5).
//!
//! Only the `W` most recent objects are *alive*; an arriving object competes
//! with alive objects only, and the expiry of an old object can promote
//! previously dominated objects back into a frontier. To mend frontiers
//! efficiently, monitors keep a *Pareto frontier buffer* (Def. 7.4): the
//! alive objects not dominated by any **succeeding** object. By Theorem 7.2
//! an object dominated by a successor can never re-enter the frontier, so
//! the buffer is exactly the set of objects that may ever need promotion.
//!
//! Fidelity note: `FilterThenVerifySW` follows Alg. 5 literally — on expiry
//! it only re-examines buffered objects that the expiring object dominated
//! *with respect to the cluster's (virtual user's) preferences*. An object
//! that a member user's own (stronger) preferences had excluded is therefore
//! not always promoted back, which is the source of the small accuracy loss
//! the paper accepts for this algorithm family; the baseline `BaselineSW`
//! has no such loss and serves as ground truth.

use std::collections::HashMap;
use std::sync::Arc;

use pm_model::{Object, ObjectId, SlidingWindow, UserId};
use pm_porder::{
    CompiledPreference, Dominance, Fingerprint, Interned, Preference, PreferenceInterner,
};

use pm_cluster::{approx_common_preference, ApproxConfig, Cluster, Clustering, Placement};

use crate::baseline::{update_pareto_frontier, update_pareto_frontier_traced, Frontier};
use crate::delta::DeltaLog;
use crate::filter_then_verify::{
    plan_detach, plan_update, renumber_member, resolve_virtual_preference, ClusterRepair,
    UpdateRepair,
};
use crate::monitor::{Arrival, ContinuousMonitor, MonitorState};
use crate::stats::MonitorStats;
use crate::timers::{timed, MonitorTimers};

/// Adds `object` to `buffer` and evicts every buffered object it dominates
/// (`refreshParetoBufferSW`, Alg. 4). By Theorem 7.2 the evicted objects can
/// never become Pareto-optimal again.
fn refresh_buffer(
    preference: &CompiledPreference,
    buffer: &mut Frontier,
    object: &Object,
    stats: &mut MonitorStats,
) {
    let mut dominated = Vec::new();
    for existing in buffer.values() {
        stats.record_comparison();
        if preference.compare(object, existing) == Dominance::Dominates {
            dominated.push(existing.id());
        }
    }
    for id in dominated {
        buffer.remove(&id);
    }
    buffer.insert(object.id(), object.clone());
}

/// `mendParetoFrontierSW` (Alg. 4): promotes `candidate` into `frontier` if
/// no current frontier member dominates it. Returns whether it was promoted.
fn mend_frontier(
    preference: &CompiledPreference,
    frontier: &mut Frontier,
    candidate: &Object,
    stats: &mut MonitorStats,
) -> bool {
    for existing in frontier.values() {
        stats.record_comparison();
        if preference.compare(existing, candidate) == Dominance::Dominates {
            return false;
        }
    }
    frontier.insert(candidate.id(), candidate.clone());
    true
}

/// Buffered objects in arrival order. Promotions must be attempted oldest
/// first so that a promoted object is visible when its (younger) dominated
/// peers are checked.
fn buffer_in_arrival_order(buffer: &Frontier) -> Vec<Object> {
    let mut objects: Vec<Object> = buffer.values().cloned().collect();
    objects.sort_by_key(Object::id);
    objects
}

/// One distinct preference of the sliding-window baseline: identical
/// preferences induce identical frontiers *and* identical Def. 7.4 buffers
/// (both depend only on the preference relations and the alive objects), so
/// all users holding this preference share one of each.
#[derive(Debug, Clone)]
struct SwBucket {
    fingerprint: Fingerprint,
    preference: Arc<Preference>,
    compiled: Arc<CompiledPreference>,
    /// Users holding this preference, in registration order.
    members: Vec<UserId>,
    frontier: Frontier,
    buffer: Frontier,
}

/// Algorithm 4: per-user sliding-window baseline.
///
/// Internally bucketed by preference [`Fingerprint`] (full equality check
/// on collision), like [`crate::BaselineMonitor`]: one frontier + buffer
/// per *distinct* preference, arrivals and expiries expanded to every
/// member. Unlike the append-only baseline there is no lossless-history
/// caveat — the window is the complete alive set, so a twin's replay always
/// equals the live twin state and twins share unconditionally.
#[derive(Debug, Clone)]
pub struct BaselineSwMonitor {
    buckets: Vec<SwBucket>,
    /// User index → bucket index.
    user_bucket: Vec<usize>,
    /// Fingerprint → bucket indices (more than one only on hash collision).
    by_fp: HashMap<Fingerprint, Vec<usize>>,
    window: SlidingWindow,
    stats: MonitorStats,
    /// Optional latency histograms (see [`MonitorTimers`]); disabled slots
    /// cost nothing.
    timers: MonitorTimers,
}

impl BaselineSwMonitor {
    /// Creates a monitor over a window of `window_size` objects, compiling
    /// every distinct preference to its bitset form up front.
    pub fn new(preferences: Vec<Preference>, window_size: usize) -> Self {
        let mut this = Self {
            buckets: Vec::new(),
            user_bucket: Vec::new(),
            by_fp: HashMap::new(),
            window: SlidingWindow::new(window_size),
            stats: MonitorStats::new(),
            timers: MonitorTimers::disabled(),
        };
        for (idx, preference) in preferences.into_iter().enumerate() {
            let user = UserId::from(idx);
            let fingerprint = preference.fingerprint();
            match this.find_bucket(fingerprint, &preference) {
                Some(bucket) => {
                    this.buckets[bucket].members.push(user);
                    this.user_bucket.push(bucket);
                }
                None => {
                    let bucket = this.push_bucket(fingerprint, preference, vec![user]);
                    this.user_bucket.push(bucket);
                }
            }
        }
        this
    }

    /// The window capacity `W`.
    pub fn window_size(&self) -> usize {
        self.window.capacity()
    }

    /// Number of distinct preferences currently monitored (= maintained
    /// frontier/buffer pairs).
    pub fn distinct_preferences(&self) -> usize {
        self.buckets.len()
    }

    /// The preference of `user`.
    pub fn preference(&self, user: UserId) -> &Preference {
        &self.buckets[self.user_bucket[user.index()]].preference
    }

    /// The current Pareto frontier buffer `PB_c` of a user, sorted by id.
    pub fn buffer(&self, user: UserId) -> Vec<ObjectId> {
        let bucket = &self.buckets[self.user_bucket[user.index()]];
        let mut ids: Vec<ObjectId> = bucket.buffer.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The bucket holding exactly `preference`, if any.
    fn find_bucket(&self, fingerprint: Fingerprint, preference: &Preference) -> Option<usize> {
        self.by_fp.get(&fingerprint).and_then(|buckets| {
            buckets
                .iter()
                .copied()
                .find(|&b| self.buckets[b].preference.as_ref() == preference)
        })
    }

    /// Appends a new bucket, compiling the preference and replaying the
    /// alive objects oldest-first: the replay rebuilds exactly the frontier
    /// and Pareto frontier buffer (Def. 7.4) a from-start user would hold
    /// over the current window.
    fn push_bucket(
        &mut self,
        fingerprint: Fingerprint,
        preference: Preference,
        members: Vec<UserId>,
    ) -> usize {
        let compiled = preference.compile();
        let mut frontier = Frontier::new();
        let mut buffer = Frontier::new();
        let timer = self.timers.backfill.clone();
        timed(timer.as_ref(), || {
            for object in self.window.iter() {
                update_pareto_frontier(&compiled, &mut frontier, object, &mut self.stats);
                refresh_buffer(&compiled, &mut buffer, object, &mut self.stats);
            }
        });
        let bucket = self.buckets.len();
        self.buckets.push(SwBucket {
            fingerprint,
            preference: Arc::new(preference),
            compiled: Arc::new(compiled),
            members,
            frontier,
            buffer,
        });
        self.by_fp.entry(fingerprint).or_default().push(bucket);
        bucket
    }

    /// Removes `user_idx` from its bucket, dropping the bucket when its
    /// last member leaves (swap-remove with index repointing).
    fn detach_user(&mut self, user_idx: usize) {
        let b = self.user_bucket[user_idx];
        let user = UserId::from(user_idx);
        let bucket = &mut self.buckets[b];
        bucket.members.retain(|&member| member != user);
        if !bucket.members.is_empty() {
            return;
        }
        let fingerprint = bucket.fingerprint;
        if let Some(buckets) = self.by_fp.get_mut(&fingerprint) {
            buckets.retain(|&other| other != b);
            if buckets.is_empty() {
                self.by_fp.remove(&fingerprint);
            }
        }
        let last = self.buckets.len() - 1;
        self.buckets.swap_remove(b);
        if b < last {
            let moved_fp = self.buckets[b].fingerprint;
            if let Some(buckets) = self.by_fp.get_mut(&moved_fp) {
                for other in buckets {
                    if *other == last {
                        *other = b;
                    }
                }
            }
            let members = self.buckets[b].members.clone();
            for member in members {
                self.user_bucket[member.index()] = b;
            }
        }
    }

    fn expire(&mut self, expired: &Object, deltas: &mut DeltaLog) {
        self.stats.record_expiration();
        for bucket in &mut self.buckets {
            let was_pareto = bucket.frontier.remove(&expired.id()).is_some();
            if was_pareto {
                for &member in &bucket.members {
                    deltas.leave(member, expired.id());
                }
                // Objects the expired frontier member dominated may now be
                // Pareto-optimal (Alg. 4, lines 2–5) — mended once per
                // distinct preference.
                for candidate in buffer_in_arrival_order(&bucket.buffer) {
                    if candidate.id() == expired.id() {
                        continue;
                    }
                    self.stats.record_comparison();
                    if bucket.compiled.compare(expired, &candidate) == Dominance::Dominates {
                        let present = bucket.frontier.contains_key(&candidate.id());
                        if mend_frontier(
                            &bucket.compiled,
                            &mut bucket.frontier,
                            &candidate,
                            &mut self.stats,
                        ) && !present
                        {
                            for &member in &bucket.members {
                                deltas.enter(member, candidate.id());
                            }
                        }
                    }
                }
            }
            bucket.buffer.remove(&expired.id());
        }
    }
}

impl ContinuousMonitor for BaselineSwMonitor {
    fn process(&mut self, object: Object) -> Arrival {
        let timer = self.timers.arrival.clone();
        timed(timer.as_ref(), || {
            let mut deltas = DeltaLog::new();
            let event = self.window.push(object.clone());
            if let Some(expired) = &event.expired {
                self.expire(expired, &mut deltas);
            }
            let mut targets = Vec::new();
            for bucket in &mut self.buckets {
                let update = update_pareto_frontier_traced(
                    &bucket.compiled,
                    &mut bucket.frontier,
                    &object,
                    &mut self.stats,
                );
                for &member in &bucket.members {
                    for evicted in &update.evicted {
                        deltas.leave(member, *evicted);
                    }
                    if update.newly_inserted {
                        deltas.enter(member, object.id());
                    }
                    if update.is_pareto {
                        targets.push(member);
                    }
                }
                refresh_buffer(
                    &bucket.compiled,
                    &mut bucket.buffer,
                    &object,
                    &mut self.stats,
                );
            }
            targets.sort_unstable();
            self.stats.record_arrival(targets.len());
            Arrival {
                object: object.id(),
                target_users: targets,
                deltas: deltas.finish(),
            }
        })
    }

    fn frontier(&self, user: UserId) -> Vec<ObjectId> {
        let bucket = &self.buckets[self.user_bucket[user.index()]];
        let mut ids: Vec<ObjectId> = bucket.frontier.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn num_users(&self) -> usize {
        self.user_bucket.len()
    }

    fn add_user(&mut self, preference: Preference) -> UserId {
        let user = UserId::from(self.user_bucket.len());
        let fingerprint = preference.fingerprint();
        // The window is the complete alive set, so a twin's replay always
        // equals the live twin state: join its bucket in O(1).
        match self.find_bucket(fingerprint, &preference) {
            Some(bucket) => {
                self.buckets[bucket].members.push(user);
                self.user_bucket.push(bucket);
            }
            None => {
                let bucket = self.push_bucket(fingerprint, preference, vec![user]);
                self.user_bucket.push(bucket);
            }
        }
        user
    }

    fn remove_user(&mut self, user: UserId) -> Option<UserId> {
        let idx = user.index();
        assert!(idx < self.user_bucket.len(), "user {user} out of range");
        self.detach_user(idx);
        let last = self.user_bucket.len() - 1;
        self.user_bucket.swap_remove(idx);
        if idx == last {
            return None;
        }
        let moved = UserId::from(last);
        let renamed = UserId::from(idx);
        for member in &mut self.buckets[self.user_bucket[idx]].members {
            if *member == moved {
                *member = renamed;
            }
        }
        Some(moved)
    }

    fn set_timers(&mut self, timers: MonitorTimers) {
        // No retained history, so the sweep slot never records.
        self.timers = timers;
    }

    fn update_user(&mut self, user: UserId, preference: Preference) {
        let idx = user.index();
        assert!(idx < self.user_bucket.len(), "user {user} out of range");
        if self.buckets[self.user_bucket[idx]].preference.as_ref() == &preference {
            // Unchanged preference: the shared state is already the exact
            // replay outcome.
            return;
        }
        let fingerprint = preference.fingerprint();
        // Leave the old bucket first — it may die, shifting bucket indices
        // — then join a twin bucket or replay a new one.
        self.detach_user(idx);
        match self.find_bucket(fingerprint, &preference) {
            Some(bucket) => {
                self.buckets[bucket].members.push(UserId::from(idx));
                self.user_bucket[idx] = bucket;
            }
            None => {
                let bucket = self.push_bucket(fingerprint, preference, vec![UserId::from(idx)]);
                self.user_bucket[idx] = bucket;
            }
        }
    }

    fn stats(&self) -> MonitorStats {
        let mut stats = self.stats;
        stats.distinct_preferences = self.buckets.len() as u64;
        stats.preference_bytes = self
            .buckets
            .iter()
            .map(|b| b.preference.approx_bytes() + b.compiled.approx_bytes())
            .sum::<usize>() as u64;
        stats
    }

    fn export_state(&self) -> MonitorState {
        MonitorState {
            history: None,
            window: Some(self.window.iter().cloned().collect()),
            stats: self.stats,
        }
    }

    fn import_state(&mut self, state: MonitorState) {
        if let Some(objects) = state.window {
            for object in objects {
                let _ = self.window.push(object);
            }
        }
    }

    fn restore_stats(&mut self, stats: MonitorStats) {
        self.stats.arrivals = stats.arrivals;
        self.stats.expirations = stats.expirations;
        self.stats.comparisons = stats.comparisons;
        self.stats.notifications = stats.notifications;
    }

    fn member_preferences(&self) -> Vec<Preference> {
        self.user_bucket
            .iter()
            .map(|&b| self.buckets[b].preference.as_ref().clone())
            .collect()
    }
}

/// One cluster's sliding-window state.
#[derive(Debug, Clone)]
struct SwClusterState {
    members: Vec<UserId>,
    /// Build-time form of the virtual user's preference (introspection).
    virtual_preference: Preference,
    /// Bitset form the filter, mend and buffer scans run on.
    compiled: CompiledPreference,
    /// `P_U`: the cluster-level frontier.
    frontier: Frontier,
    /// `PB_U`: the cluster-level Pareto frontier buffer (Def. 7.4 for the
    /// virtual user). One buffer per cluster replaces one buffer per user.
    buffer: Frontier,
}

impl SwClusterState {
    fn new(members: Vec<UserId>, virtual_preference: Preference) -> Self {
        let compiled = virtual_preference.compile();
        Self {
            members,
            virtual_preference,
            compiled,
            frontier: Frontier::new(),
            buffer: Frontier::new(),
        }
    }
}

/// Algorithm 5: sliding-window FilterThenVerify (and its approximate
/// variant, depending on how the virtual preferences are built).
#[derive(Debug, Clone)]
pub struct FilterThenVerifySwMonitor {
    /// Per-user interned preference handles: build-time and bitset forms
    /// are shared `Arc`s, one per *distinct* preference.
    users: Vec<Interned>,
    /// Deduplicates the users' preferences so memory and compilation scale
    /// with the number of distinct preferences, not the population size.
    interner: PreferenceInterner,
    user_frontiers: Vec<Frontier>,
    clusters: Vec<SwClusterState>,
    /// Incrementally maintained clustering driving dynamic membership;
    /// `None` for monitors built from fixed cluster lists (fallback:
    /// singleton insertion, `common_of` repair).
    clustering: Option<Clustering>,
    /// Alg. 3 thresholds when the virtual preferences are approximate.
    approx: Option<ApproxConfig>,
    window: SlidingWindow,
    stats: MonitorStats,
    /// Optional latency histograms (see [`MonitorTimers`]); disabled slots
    /// cost nothing.
    timers: MonitorTimers,
}

impl FilterThenVerifySwMonitor {
    /// Creates a monitor whose clusters carry exact common preference
    /// relations (FilterThenVerifySW).
    pub fn new(preferences: Vec<Preference>, clusters: &[Cluster], window_size: usize) -> Self {
        let states = clusters
            .iter()
            .map(|c| SwClusterState::new(c.members.clone(), c.common.clone()))
            .collect();
        Self::from_states(preferences, states, None, None, window_size)
    }

    /// Creates a monitor backed by an incrementally maintained
    /// [`Clustering`]: [`Self::add_user`] joins the most similar cluster
    /// (or spins up a singleton) and [`Self::remove_user`] repairs only the
    /// affected cluster, whose frontier and buffer are rebuilt by replaying
    /// the window under the recomputed common relation.
    pub fn with_clustering(
        preferences: Vec<Preference>,
        clustering: Clustering,
        window_size: usize,
    ) -> Self {
        assert_eq!(
            clustering.num_users(),
            preferences.len(),
            "clustering must cover exactly the monitor's users"
        );
        let states = clustering
            .clusters()
            .into_iter()
            .map(|c| SwClusterState::new(c.members, c.common))
            .collect();
        Self::from_states(preferences, states, Some(clustering), None, window_size)
    }

    /// Creates a monitor whose clusters carry approximate common preference
    /// relations built with Alg. 3 (FilterThenVerifyApproxSW).
    pub fn with_approx_clusters(
        preferences: Vec<Preference>,
        clusters: &[Cluster],
        config: ApproxConfig,
        window_size: usize,
    ) -> Self {
        let states = Self::approx_states(&preferences, clusters, config);
        Self::from_states(preferences, states, None, Some(config), window_size)
    }

    /// Like [`Self::with_clustering`], but with approximate (Alg. 3)
    /// virtual preferences.
    pub fn with_approx_clustering(
        preferences: Vec<Preference>,
        clustering: Clustering,
        config: ApproxConfig,
        window_size: usize,
    ) -> Self {
        assert_eq!(
            clustering.num_users(),
            preferences.len(),
            "clustering must cover exactly the monitor's users"
        );
        let states = Self::approx_states(&preferences, &clustering.clusters(), config);
        Self::from_states(
            preferences,
            states,
            Some(clustering),
            Some(config),
            window_size,
        )
    }

    /// Creates a monitor with explicitly provided virtual preferences.
    pub fn with_virtual_preferences(
        preferences: Vec<Preference>,
        clusters: Vec<(Vec<UserId>, Preference)>,
        window_size: usize,
    ) -> Self {
        let states = clusters
            .into_iter()
            .map(|(members, virtual_preference)| SwClusterState::new(members, virtual_preference))
            .collect();
        Self::from_states(preferences, states, None, None, window_size)
    }

    fn approx_states(
        preferences: &[Preference],
        clusters: &[Cluster],
        config: ApproxConfig,
    ) -> Vec<SwClusterState> {
        clusters
            .iter()
            .map(|c| {
                let virtual_preference = approx_common_preference(
                    c.members.iter().map(|u| &preferences[u.index()]),
                    config,
                );
                SwClusterState::new(c.members.clone(), virtual_preference)
            })
            .collect()
    }

    fn from_states(
        preferences: Vec<Preference>,
        clusters: Vec<SwClusterState>,
        clustering: Option<Clustering>,
        approx: Option<ApproxConfig>,
        window_size: usize,
    ) -> Self {
        let mut interner = PreferenceInterner::new();
        let users: Vec<Interned> = preferences.iter().map(|p| interner.intern(p)).collect();
        let user_frontiers = vec![Frontier::new(); users.len()];
        Self {
            users,
            interner,
            user_frontiers,
            clusters,
            clustering,
            approx,
            window: SlidingWindow::new(window_size),
            stats: MonitorStats::new(),
            timers: MonitorTimers::disabled(),
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The preference of `user`.
    pub fn preference(&self, user: UserId) -> &Preference {
        self.users[user.index()].preference.as_ref()
    }

    /// Number of distinct preferences across the current users (a gauge;
    /// users with equal preferences share one compiled bitset).
    pub fn distinct_preferences(&self) -> usize {
        self.interner.distinct()
    }

    /// The window capacity `W`.
    pub fn window_size(&self) -> usize {
        self.window.capacity()
    }

    /// The cluster-level frontier `P_U`, sorted by id.
    pub fn cluster_frontier(&self, cluster: usize) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.clusters[cluster].frontier.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The virtual preference used by a cluster (common or approximate).
    pub fn virtual_preference(&self, cluster: usize) -> &Preference {
        &self.clusters[cluster].virtual_preference
    }

    /// The cluster-level buffer `PB_U`, sorted by id.
    pub fn cluster_buffer(&self, cluster: usize) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.clusters[cluster].buffer.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Recomputes one cluster's virtual preference after a membership or
    /// preference change (`exact_common` comes from a maintained
    /// [`Clustering`]; approx monitors rebuild the Alg. 3 relation from the
    /// members' already-updated preferences). The caller must follow up
    /// with [`Self::rebuild_cluster_state`]: under a different common
    /// relation the old buffer may be too small to mend future expiries.
    fn refresh_virtual_preference(&mut self, cluster: usize, exact_common: Option<Preference>) {
        let virtual_preference = resolve_virtual_preference(
            &self.users,
            &self.clusters[cluster].members,
            self.approx,
            exact_common,
        );
        let state = &mut self.clusters[cluster];
        state.compiled = virtual_preference.compile();
        state.virtual_preference = virtual_preference;
    }

    /// Rebuilds one cluster's frontier `P_U` and buffer `PB_U` by replaying
    /// the alive objects under the cluster's (possibly just recomputed)
    /// compiled common relation. After a membership change the old state was
    /// computed under a different relation, and a too-small buffer would
    /// miss promotions on future expiries — the replay restores exactly the
    /// state a from-start cluster would hold over the current window.
    fn rebuild_cluster_state(&mut self, cluster: usize) {
        let state = &mut self.clusters[cluster];
        state.frontier.clear();
        state.buffer.clear();
        for object in self.window.iter() {
            update_pareto_frontier(
                &state.compiled,
                &mut state.frontier,
                object,
                &mut self.stats,
            );
            refresh_buffer(&state.compiled, &mut state.buffer, object, &mut self.stats);
        }
    }

    fn expire(&mut self, expired: &Object, deltas: &mut DeltaLog) {
        self.stats.record_expiration();
        for cluster in &mut self.clusters {
            let was_cluster_pareto = cluster.frontier.remove(&expired.id()).is_some();
            for member in &cluster.members {
                if self.user_frontiers[member.index()]
                    .remove(&expired.id())
                    .is_some()
                {
                    deltas.leave(*member, expired.id());
                }
            }
            if was_cluster_pareto {
                // Alg. 5, lines 2–8: promote buffered objects the expired
                // object dominated (w.r.t. the virtual user), first into P_U,
                // then — if successful — into each member's frontier.
                for candidate in buffer_in_arrival_order(&cluster.buffer) {
                    if candidate.id() == expired.id() {
                        continue;
                    }
                    self.stats.record_comparison();
                    if cluster.compiled.compare(expired, &candidate) != Dominance::Dominates {
                        continue;
                    }
                    let promoted = mend_frontier(
                        &cluster.compiled,
                        &mut cluster.frontier,
                        &candidate,
                        &mut self.stats,
                    );
                    if promoted {
                        for member in &cluster.members {
                            let frontier = &mut self.user_frontiers[member.index()];
                            let present = frontier.contains_key(&candidate.id());
                            if mend_frontier(
                                self.users[member.index()].compiled.as_ref(),
                                frontier,
                                &candidate,
                                &mut self.stats,
                            ) && !present
                            {
                                deltas.enter(*member, candidate.id());
                            }
                        }
                    }
                }
            }
            cluster.buffer.remove(&expired.id());
        }
    }

    /// `updateParetoFrontierUSW` plus the per-member verification of Alg. 5
    /// (lines 10–14). Returns the members for whom the object is reported
    /// Pareto-optimal.
    fn arrive_cluster(
        users: &[Interned],
        user_frontiers: &mut [Frontier],
        cluster: &mut SwClusterState,
        object: &Object,
        stats: &mut MonitorStats,
        deltas: &mut DeltaLog,
    ) -> Vec<UserId> {
        let mut targets = Vec::new();
        let mut is_pareto = true;
        let mut dominated: Vec<ObjectId> = Vec::new();
        for existing in cluster.frontier.values() {
            stats.record_comparison();
            match cluster.compiled.compare(object, existing) {
                Dominance::Dominates => dominated.push(existing.id()),
                Dominance::DominatedBy => {
                    is_pareto = false;
                    dominated.clear();
                    break;
                }
                Dominance::Identical | Dominance::Incomparable => {}
            }
        }
        for id in &dominated {
            cluster.frontier.remove(id);
            for member in &cluster.members {
                if user_frontiers[member.index()].remove(id).is_some() {
                    deltas.leave(*member, *id);
                }
            }
        }
        if is_pareto {
            cluster.frontier.insert(object.id(), object.clone());
            for member in &cluster.members {
                let pref = users[member.index()].compiled.as_ref();
                let update = update_pareto_frontier_traced(
                    pref,
                    &mut user_frontiers[member.index()],
                    object,
                    stats,
                );
                for evicted in &update.evicted {
                    deltas.leave(*member, *evicted);
                }
                if update.newly_inserted {
                    deltas.enter(*member, object.id());
                }
                if update.is_pareto {
                    targets.push(*member);
                }
            }
        }
        // Alg. 5, line 15: the cluster buffer is refreshed regardless of
        // whether the object is currently Pareto-optimal.
        refresh_buffer(&cluster.compiled, &mut cluster.buffer, object, stats);
        targets
    }
}

impl ContinuousMonitor for FilterThenVerifySwMonitor {
    fn process(&mut self, object: Object) -> Arrival {
        let timer = self.timers.arrival.clone();
        timed(timer.as_ref(), || {
            let mut deltas = DeltaLog::new();
            let event = self.window.push(object.clone());
            if let Some(expired) = &event.expired {
                self.expire(expired, &mut deltas);
            }
            let mut targets = Vec::new();
            for cluster in &mut self.clusters {
                targets.extend(Self::arrive_cluster(
                    &self.users,
                    &mut self.user_frontiers,
                    cluster,
                    &object,
                    &mut self.stats,
                    &mut deltas,
                ));
            }
            targets.sort_unstable();
            self.stats.record_arrival(targets.len());
            Arrival {
                object: object.id(),
                target_users: targets,
                deltas: deltas.finish(),
            }
        })
    }

    fn frontier(&self, user: UserId) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.user_frontiers[user.index()].keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn num_users(&self) -> usize {
        self.users.len()
    }

    fn add_user(&mut self, preference: Preference) -> UserId {
        let user = UserId::from(self.users.len());
        let interned = self.interner.intern(&preference);
        // Backfill the user's own frontier from the alive objects.
        let mut frontier = Frontier::new();
        let timer = self.timers.backfill.clone();
        timed(timer.as_ref(), || {
            for object in self.window.iter() {
                update_pareto_frontier(&interned.compiled, &mut frontier, object, &mut self.stats);
            }
        });
        self.users.push(interned);
        self.user_frontiers.push(frontier);
        let placement = match self.clustering.as_mut() {
            Some(clustering) => {
                clustering.insert_user(user, self.users[user.index()].preference.as_ref())
            }
            None => Placement::Singleton {
                cluster: self.clusters.len(),
            },
        };
        let cluster = match placement {
            Placement::Joined { cluster, common } => {
                self.clusters[cluster].members.push(user);
                self.refresh_virtual_preference(cluster, Some(common));
                cluster
            }
            Placement::Singleton { cluster } => {
                debug_assert_eq!(cluster, self.clusters.len());
                self.clusters.push(SwClusterState::new(
                    vec![user],
                    self.users[user.index()].preference.as_ref().clone(),
                ));
                cluster
            }
        };
        self.rebuild_cluster_state(cluster);
        user
    }

    fn update_user(&mut self, user: UserId, preference: Preference) {
        let idx = user.index();
        assert!(idx < self.users.len(), "user {user} out of range");
        // Rebuild the user's own frontier by replaying the window under the
        // new preference. Intern before releasing the old handle so an
        // update within the same distinct preference never recompiles.
        let interned = self.interner.intern(&preference);
        let mut frontier = Frontier::new();
        let timer = self.timers.backfill.clone();
        timed(timer.as_ref(), || {
            for object in self.window.iter() {
                update_pareto_frontier(&interned.compiled, &mut frontier, object, &mut self.stats);
            }
        });
        let old = std::mem::replace(&mut self.users[idx], interned);
        self.interner.release(old.id);
        self.user_frontiers[idx] = frontier;
        // Repair the clustering; every cluster whose common relation changed
        // replays the window so its frontier and Def. 7.4 buffer match a
        // from-start cluster over the current window.
        let repair = plan_update(
            self.clustering.as_mut(),
            self.clusters.iter().map(|c| c.members.as_slice()),
            user,
            self.users[idx].preference.as_ref(),
        );
        match repair {
            UpdateRepair::Stay(cluster, exact_common) => {
                self.refresh_virtual_preference(cluster, exact_common);
                self.rebuild_cluster_state(cluster);
            }
            UpdateRepair::Move {
                from,
                from_common,
                to,
                to_common,
            } => {
                self.clusters[from].members.retain(|&m| m != user);
                self.refresh_virtual_preference(from, from_common);
                self.rebuild_cluster_state(from);
                self.clusters[to].members.push(user);
                self.refresh_virtual_preference(to, to_common);
                self.rebuild_cluster_state(to);
            }
            UpdateRepair::MoveSingleton { from, from_common } => {
                self.clusters[from].members.retain(|&m| m != user);
                self.refresh_virtual_preference(from, from_common);
                self.rebuild_cluster_state(from);
                self.clusters.push(SwClusterState::new(
                    vec![user],
                    self.users[idx].preference.as_ref().clone(),
                ));
                self.rebuild_cluster_state(self.clusters.len() - 1);
            }
            UpdateRepair::Detached => {}
        }
    }

    fn remove_user(&mut self, user: UserId) -> Option<UserId> {
        let idx = user.index();
        assert!(idx < self.users.len(), "user {user} out of range");
        let repair = plan_detach(
            self.clustering.as_mut(),
            self.clusters.iter().map(|c| c.members.as_slice()),
            user,
        );
        match repair {
            ClusterRepair::Drop(cluster) => {
                self.clusters.swap_remove(cluster);
            }
            ClusterRepair::Recompute(cluster, exact_common) => {
                self.clusters[cluster].members.retain(|&m| m != user);
                self.refresh_virtual_preference(cluster, exact_common);
                self.rebuild_cluster_state(cluster);
            }
            ClusterRepair::Detached => {}
        }
        let last = self.users.len() - 1;
        let old = self.users.swap_remove(idx);
        self.interner.release(old.id);
        self.user_frontiers.swap_remove(idx);
        if idx == last {
            return None;
        }
        let moved = UserId::from(last);
        renumber_member(
            self.clustering.as_mut(),
            self.clusters.iter_mut().map(|c| &mut c.members),
            moved,
            user,
        );
        Some(moved)
    }

    fn set_timers(&mut self, timers: MonitorTimers) {
        // No retained history, so the sweep slot never records.
        self.timers = timers;
    }

    fn stats(&self) -> MonitorStats {
        let mut stats = self.stats;
        stats.distinct_preferences = self.interner.distinct() as u64;
        stats.preference_bytes = self.interner.approx_bytes() as u64;
        stats
    }

    fn export_state(&self) -> MonitorState {
        MonitorState {
            history: None,
            window: Some(self.window.iter().cloned().collect()),
            stats: self.stats,
        }
    }

    fn import_state(&mut self, state: MonitorState) {
        if let Some(objects) = state.window {
            for object in objects {
                let _ = self.window.push(object);
            }
        }
    }

    fn restore_stats(&mut self, stats: MonitorStats) {
        self.stats.arrivals = stats.arrivals;
        self.stats.expirations = stats.expirations;
        self.stats.comparisons = stats.comparisons;
        self.stats.notifications = stats.notifications;
    }

    fn member_preferences(&self) -> Vec<Preference> {
        self.users
            .iter()
            .map(|u| u.preference.as_ref().clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::AttrId;
    use pm_model::ValueId;
    use pm_porder::naive_pareto_frontier;

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn a(i: u32) -> AttrId {
        AttrId::new(i)
    }

    fn obj(id: u64, vals: &[u32]) -> Object {
        Object::new(ObjectId::new(id), vals.iter().map(|&x| v(x)).collect())
    }

    /// Laptop users c1, c2 (same encoding as the baseline tests).
    fn laptop_users() -> Vec<Preference> {
        let mut c1 = Preference::new(3);
        c1.prefer(a(0), v(2), v(1));
        c1.prefer(a(0), v(1), v(3));
        c1.prefer(a(0), v(1), v(4));
        c1.prefer(a(0), v(1), v(0));
        c1.prefer(a(1), v(0), v(1));
        c1.prefer(a(1), v(1), v(4));
        c1.prefer(a(1), v(1), v(2));
        c1.prefer(a(1), v(0), v(3));
        c1.prefer(a(2), v(1), v(2));
        c1.prefer(a(2), v(1), v(3));
        c1.prefer(a(2), v(2), v(0));
        c1.prefer(a(2), v(3), v(0));
        let mut c2 = Preference::new(3);
        c2.prefer(a(0), v(2), v(1));
        c2.prefer(a(0), v(2), v(3));
        c2.prefer(a(0), v(3), v(4));
        c2.prefer(a(0), v(4), v(0));
        c2.prefer(a(0), v(1), v(0));
        c2.prefer(a(1), v(0), v(4));
        c2.prefer(a(1), v(1), v(4));
        c2.prefer(a(1), v(4), v(3));
        c2.prefer(a(1), v(1), v(2));
        c2.prefer(a(2), v(3), v(2));
        c2.prefer(a(2), v(2), v(1));
        c2.prefer(a(2), v(1), v(0));
        vec![c1, c2]
    }

    /// The Table 8 product stream of Example 7.7.
    ///
    /// display: 9.9-under=0, 10-12.9=1, 13-15.9=2, 16-18.9=3, 19-up=4
    /// brand:   Apple=0, Lenovo=1, Samsung=2, Sony=3, Toshiba=4
    /// cpu:     single=0, dual=1, triple=2, quad=3
    fn table8_objects() -> Vec<Object> {
        vec![
            obj(1, &[3, 1, 1]), // o1: 17, Lenovo, dual
            obj(2, &[0, 3, 0]), // o2: 9.5, Sony, single
            obj(3, &[1, 0, 1]), // o3: 12, Apple, dual
            obj(4, &[3, 1, 3]), // o4: 16, Lenovo, quad
            obj(5, &[4, 4, 0]), // o5: 19, Toshiba, single
            obj(6, &[1, 2, 3]), // o6: 12.5, Samsung, quad
            obj(7, &[2, 0, 1]), // o7: 14, Apple, dual
        ]
    }

    fn one_cluster(users: &[Preference]) -> Vec<(Vec<UserId>, Preference)> {
        vec![(
            (0..users.len()).map(UserId::from).collect(),
            Preference::common_of(users.iter()),
        )]
    }

    /// Recomputes the ground-truth frontier of the alive objects.
    fn oracle_frontier(pref: &Preference, alive: &[Object]) -> Vec<ObjectId> {
        let mut ids = naive_pareto_frontier(pref, alive);
        ids.sort_unstable();
        ids
    }

    // Note: the paper's running Example 7.7 (Tables 9 and 10) is not
    // internally consistent with the preferences of Table 2 (e.g. o4 is
    // listed outside Pc1 for window (1,6] yet nothing alive dominates it
    // under Table 2's c1 once o1 has expired), so the sliding-window tests
    // validate against a ground-truth oracle recomputed from the alive
    // objects instead of hard-coding the example tables.

    #[test]
    fn table8_stream_baseline_sw_tracks_oracle() {
        let users = laptop_users();
        let window = 6;
        let mut m = BaselineSwMonitor::new(users.clone(), window);
        let objects = table8_objects();
        for (i, o) in objects.iter().enumerate() {
            let arrival = m.process(o.clone());
            let alive_start = (i + 1).saturating_sub(window);
            let alive = &objects[alive_start..=i];
            for (u, pref) in users.iter().enumerate() {
                let oracle = oracle_frontier(pref, alive);
                assert_eq!(m.frontier(UserId::from(u)), oracle, "user {u} step {i}");
                // The arriving object's target set agrees with the oracle.
                let is_target = arrival.target_users.contains(&UserId::from(u));
                assert_eq!(is_target, oracle.contains(&o.id()), "user {u} step {i}");
            }
        }
        // o7 replaces o3 for both users once the window has slid past o1.
        let arrival_ids = m.frontier(UserId::new(0));
        assert!(arrival_ids.contains(&ObjectId::new(7)));
    }

    #[test]
    fn table8_stream_filter_then_verify_sw_invariants() {
        let users = laptop_users();
        let mut m = FilterThenVerifySwMonitor::with_virtual_preferences(
            users.clone(),
            one_cluster(&users),
            6,
        );
        for o in table8_objects() {
            m.process(o);
            let pu = m.cluster_frontier(0);
            let pbu = m.cluster_buffer(0);
            // Thm. 7.5: PB_U ⊇ P_U and P_U ⊇ P_c for every member.
            for id in &pu {
                assert!(pbu.contains(id), "PB_U must contain {id}");
            }
            for u in 0..users.len() {
                for id in m.frontier(UserId::from(u)) {
                    assert!(pu.contains(&id), "P_U must contain {id} of user {u}");
                }
            }
        }
        // After the full stream the newest strong object (o7: 14", Apple,
        // dual) is on both users' frontiers.
        for u in 0..users.len() {
            assert!(m.frontier(UserId::from(u)).contains(&ObjectId::new(7)));
        }
    }

    #[test]
    fn baseline_sw_matches_oracle_on_every_step() {
        let users = laptop_users();
        let window = 4;
        let mut m = BaselineSwMonitor::new(users.clone(), window);
        let objects: Vec<Object> = table8_objects()
            .into_iter()
            .chain(vec![
                obj(8, &[2, 2, 1]),
                obj(9, &[0, 1, 3]),
                obj(10, &[1, 0, 0]),
                obj(11, &[2, 0, 3]),
            ])
            .collect();
        for (i, o) in objects.iter().enumerate() {
            m.process(o.clone());
            let alive_start = (i + 1).saturating_sub(window);
            let alive = &objects[alive_start..=i];
            for (u, pref) in users.iter().enumerate() {
                assert_eq!(
                    m.frontier(UserId::from(u)),
                    oracle_frontier(pref, alive),
                    "user {u} after object {}",
                    o.id()
                );
            }
        }
    }

    #[test]
    fn singleton_clusters_sw_match_baseline_sw() {
        let users = laptop_users();
        let clusters: Vec<(Vec<UserId>, Preference)> = users
            .iter()
            .enumerate()
            .map(|(i, p)| (vec![UserId::from(i)], p.clone()))
            .collect();
        let mut baseline = BaselineSwMonitor::new(users.clone(), 3);
        let mut ftv =
            FilterThenVerifySwMonitor::with_virtual_preferences(users.clone(), clusters, 3);
        let objects: Vec<Object> = table8_objects()
            .into_iter()
            .chain(vec![
                obj(8, &[2, 2, 1]),
                obj(9, &[0, 1, 3]),
                obj(10, &[1, 0, 0]),
            ])
            .collect();
        for o in objects {
            let a = baseline.process(o.clone());
            let b = ftv.process(o);
            assert_eq!(a.target_users, b.target_users, "object {}", a.object);
            for u in 0..baseline.num_users() {
                assert_eq!(
                    baseline.frontier(UserId::from(u)),
                    ftv.frontier(UserId::from(u))
                );
            }
        }
    }

    #[test]
    fn buffer_contains_frontier() {
        // Def. 7.4: PB_c ⊇ P_c, and Thm. 7.5: PB_U ⊇ P_U.
        let users = laptop_users();
        let mut baseline = BaselineSwMonitor::new(users.clone(), 4);
        let mut ftv = FilterThenVerifySwMonitor::with_virtual_preferences(
            users.clone(),
            one_cluster(&users),
            4,
        );
        for o in table8_objects() {
            baseline.process(o.clone());
            ftv.process(o);
            for u in 0..users.len() {
                let frontier = baseline.frontier(UserId::from(u));
                let buffer = baseline.buffer(UserId::from(u));
                for id in &frontier {
                    assert!(buffer.contains(id), "PB_c must contain {id}");
                }
            }
            let pu = ftv.cluster_frontier(0);
            let pbu = ftv.cluster_buffer(0);
            for id in &pu {
                assert!(pbu.contains(id), "PB_U must contain {id}");
            }
        }
    }

    #[test]
    fn cluster_frontier_contains_member_frontiers_sw() {
        let users = laptop_users();
        let mut ftv = FilterThenVerifySwMonitor::with_virtual_preferences(
            users.clone(),
            one_cluster(&users),
            5,
        );
        for o in table8_objects() {
            ftv.process(o);
            let pu = ftv.cluster_frontier(0);
            for u in 0..users.len() {
                for id in ftv.frontier(UserId::from(u)) {
                    assert!(pu.contains(&id), "P_U must contain {id} of user {u}");
                }
            }
        }
    }

    #[test]
    fn expired_objects_leave_all_state() {
        let users = laptop_users();
        let mut m = BaselineSwMonitor::new(users, 2);
        m.process(obj(1, &[3, 1, 1]));
        m.process(obj(2, &[0, 3, 0]));
        m.process(obj(3, &[1, 0, 1]));
        // o1 has expired: it may appear in no frontier or buffer.
        for u in 0..m.num_users() {
            assert!(!m.frontier(UserId::from(u)).contains(&ObjectId::new(1)));
            assert!(!m.buffer(UserId::from(u)).contains(&ObjectId::new(1)));
        }
        assert_eq!(m.stats().expirations, 1);
        assert_eq!(m.window_size(), 2);
    }

    #[test]
    fn approx_sw_constructor_produces_working_monitor() {
        let users = laptop_users();
        let cluster = Cluster {
            members: vec![UserId::new(0), UserId::new(1)],
            common: Preference::common_of(users.iter()),
        };
        let mut m = FilterThenVerifySwMonitor::with_approx_clusters(
            users,
            std::slice::from_ref(&cluster),
            ApproxConfig::new(64, 0.4),
            4,
        );
        for o in table8_objects() {
            m.process(o);
        }
        assert_eq!(m.num_clusters(), 1);
        assert_eq!(m.window_size(), 4);
        assert!(m.stats().arrivals == 7);
        assert!(m.stats().expirations == 3);
    }

    #[test]
    fn added_sliding_user_matches_from_start_monitor_over_the_window() {
        let users = laptop_users();
        let window = 4;
        let mut m = BaselineSwMonitor::new(vec![users[0].clone()], window);
        let objects = table8_objects();
        for o in &objects[..5] {
            m.process(o.clone());
        }
        let added = m.add_user(users[1].clone());
        assert_eq!(added, UserId::new(1));
        for o in &objects[5..] {
            m.process(o.clone());
        }
        let mut from_start = BaselineSwMonitor::new(users.clone(), window);
        for o in &objects {
            from_start.process(o.clone());
        }
        assert_eq!(m.frontier(added), from_start.frontier(UserId::new(1)));
        assert_eq!(m.buffer(added), from_start.buffer(UserId::new(1)));
        // Expiry-driven mending keeps working for the registered user.
        let extra = [obj(8, &[0, 1, 3]), obj(9, &[1, 0, 0]), obj(10, &[4, 4, 0])];
        for o in &extra {
            m.process(o.clone());
            from_start.process(o.clone());
        }
        assert_eq!(m.frontier(added), from_start.frontier(UserId::new(1)));
    }

    #[test]
    fn dynamic_singleton_clusters_sw_track_baseline_sw() {
        use pm_cluster::{Clustering, ExactMeasure};
        let users = laptop_users();
        let window = 4;
        // An impossible branch cut keeps every user in a singleton cluster,
        // where FilterThenVerifySW is exact — including under churn.
        let clustering = Clustering::new(&users, ExactMeasure::Jaccard, 100.0);
        let mut ftv = FilterThenVerifySwMonitor::with_clustering(users.clone(), clustering, window);
        let mut baseline = BaselineSwMonitor::new(users.clone(), window);
        let objects = table8_objects();
        for o in &objects[..4] {
            assert_eq!(
                ftv.process(o.clone()).target_users,
                baseline.process(o.clone()).target_users
            );
        }
        let pref = users[0].clone();
        assert_eq!(ftv.add_user(pref.clone()), baseline.add_user(pref));
        // The newcomer is a twin of user 0 and joins its cluster outright
        // (twins bypass the branch cut); the cluster's common preference is
        // the shared preference itself, so the filter stays exact.
        assert_eq!(ftv.num_clusters(), 2);
        for o in &objects[4..] {
            assert_eq!(
                ftv.process(o.clone()).target_users,
                baseline.process(o.clone()).target_users
            );
        }
        assert_eq!(
            ftv.remove_user(UserId::new(0)),
            baseline.remove_user(UserId::new(0))
        );
        assert_eq!(ftv.num_clusters(), 2);
        let extra = [obj(8, &[2, 2, 1]), obj(9, &[0, 1, 3]), obj(10, &[1, 0, 0])];
        for o in &extra {
            assert_eq!(
                ftv.process(o.clone()).target_users,
                baseline.process(o.clone()).target_users
            );
        }
        for u in 0..baseline.num_users() {
            assert_eq!(
                ftv.frontier(UserId::from(u)),
                baseline.frontier(UserId::from(u)),
                "user {u}"
            );
        }
    }

    #[test]
    fn updated_sliding_user_matches_from_start_monitor_over_the_window() {
        let users = laptop_users();
        let window = 4;
        let mut m = BaselineSwMonitor::new(users.clone(), window);
        let objects = table8_objects();
        for o in &objects[..5] {
            m.process(o.clone());
        }
        // c1 adopts c2's preference mid-stream.
        m.update_user(UserId::new(0), users[1].clone());
        assert_eq!(m.num_users(), 2);
        for o in &objects[5..] {
            m.process(o.clone());
        }
        let mut from_start =
            BaselineSwMonitor::new(vec![users[1].clone(), users[1].clone()], window);
        for o in &objects {
            from_start.process(o.clone());
        }
        assert_eq!(
            m.frontier(UserId::new(0)),
            from_start.frontier(UserId::new(0))
        );
        assert_eq!(m.buffer(UserId::new(0)), from_start.buffer(UserId::new(0)));
        // Expiry-driven mending keeps working under the new preference.
        let extra = [obj(8, &[0, 1, 3]), obj(9, &[1, 0, 0]), obj(10, &[4, 4, 0])];
        for o in &extra {
            m.process(o.clone());
            from_start.process(o.clone());
        }
        assert_eq!(
            m.frontier(UserId::new(0)),
            from_start.frontier(UserId::new(0))
        );
    }

    #[test]
    fn dynamic_singleton_clusters_sw_track_baseline_sw_under_update() {
        use pm_cluster::{Clustering, ExactMeasure};
        let users = laptop_users();
        let window = 4;
        // Singleton clusters keep FilterThenVerifySW exact, including under
        // in-place preference updates.
        let clustering = Clustering::new(&users, ExactMeasure::Jaccard, 100.0);
        let mut ftv = FilterThenVerifySwMonitor::with_clustering(users.clone(), clustering, window);
        let mut baseline = BaselineSwMonitor::new(users.clone(), window);
        let objects = table8_objects();
        for o in &objects[..4] {
            assert_eq!(
                ftv.process(o.clone()).target_users,
                baseline.process(o.clone()).target_users
            );
        }
        let new_pref = users[0].clone();
        ftv.update_user(UserId::new(1), new_pref.clone());
        baseline.update_user(UserId::new(1), new_pref);
        assert_eq!(ftv.num_clusters(), 2);
        for o in &objects[4..] {
            assert_eq!(
                ftv.process(o.clone()).target_users,
                baseline.process(o.clone()).target_users
            );
        }
        let extra = [obj(8, &[2, 2, 1]), obj(9, &[0, 1, 3]), obj(10, &[1, 0, 0])];
        for o in &extra {
            assert_eq!(
                ftv.process(o.clone()).target_users,
                baseline.process(o.clone()).target_users
            );
        }
        for u in 0..baseline.num_users() {
            assert_eq!(
                ftv.frontier(UserId::from(u)),
                baseline.frontier(UserId::from(u)),
                "user {u}"
            );
        }
    }

    #[test]
    fn window_of_one_keeps_only_newest() {
        let users = laptop_users();
        let mut m = BaselineSwMonitor::new(users, 1);
        for o in table8_objects() {
            let arrival = m.process(o);
            // With a window of one, every arriving object is trivially
            // Pareto-optimal for every user.
            assert_eq!(arrival.target_users.len(), 2);
        }
        assert_eq!(m.frontier(UserId::new(0)), vec![ObjectId::new(7)]);
        assert_eq!(m.buffer(UserId::new(1)), vec![ObjectId::new(7)]);
    }
}
