//! Algorithm 1 — `Baseline`: independent Pareto-frontier maintenance per
//! user.
//!
//! Upon the arrival of a new object `o`, the baseline compares `o` with the
//! current Pareto-optimal objects of every user, one user at a time. It is
//! correct and simple, but repeats the same comparisons for users with
//! similar preferences — the inefficiency the FilterThenVerify family
//! removes.

use std::collections::HashMap;
use std::sync::Arc;

use pm_model::{Object, ObjectId, UserId};
use pm_porder::{CompiledPreference, Dominance, Fingerprint, Preference};

use crate::delta::DeltaLog;
use crate::history::{History, HistoryMode};
use crate::monitor::{Arrival, ContinuousMonitor, MonitorState};
use crate::stats::MonitorStats;
use crate::timers::{timed, MonitorTimers};

/// Per-user Pareto frontier: frontier objects are stored by value so no
/// shared catalog is needed and expired/dominated objects are dropped
/// eagerly.
pub(crate) type Frontier = HashMap<ObjectId, Object>;

/// The traced outcome of [`update_pareto_frontier_traced`]: whether the
/// object was Pareto-optimal, whether its insert created a *new* frontier
/// entry, and which existing entries it evicted — exactly the information
/// a delta log needs.
pub(crate) struct FrontierUpdate {
    pub(crate) is_pareto: bool,
    pub(crate) newly_inserted: bool,
    pub(crate) evicted: Vec<ObjectId>,
}

/// The outcome of updating one user's frontier with a new object
/// (Procedure `updateParetoFrontier` of Alg. 1). Runs on the compiled
/// (bitset) preference form: every dominance test is word-indexed bit math.
pub(crate) fn update_pareto_frontier(
    preference: &CompiledPreference,
    frontier: &mut Frontier,
    object: &Object,
    stats: &mut MonitorStats,
) -> bool {
    update_pareto_frontier_traced(preference, frontier, object, stats).is_pareto
}

/// Like [`update_pareto_frontier`], but reports which frontier entries the
/// update evicted and whether the insert was genuinely new, for callers
/// that log frontier deltas (replay paths use the untraced wrapper: replay
/// reports no deltas, just as it reports no notifications).
pub(crate) fn update_pareto_frontier_traced(
    preference: &CompiledPreference,
    frontier: &mut Frontier,
    object: &Object,
    stats: &mut MonitorStats,
) -> FrontierUpdate {
    let mut is_pareto = true;
    let mut dominated: Vec<ObjectId> = Vec::new();
    for existing in frontier.values() {
        stats.record_comparison();
        match preference.compare(object, existing) {
            Dominance::Dominates => dominated.push(existing.id()),
            Dominance::DominatedBy => {
                is_pareto = false;
                dominated.clear();
                break;
            }
            Dominance::Identical => {
                // An identical object is Pareto-optimal as well (Alg. 1,
                // line 6); no existing object needs to be removed.
                break;
            }
            Dominance::Incomparable => {}
        }
    }
    let mut evicted = Vec::new();
    for id in dominated {
        if frontier.remove(&id).is_some() {
            evicted.push(id);
        }
    }
    let newly_inserted = is_pareto && frontier.insert(object.id(), object.clone()).is_none();
    FrontierUpdate {
        is_pareto,
        newly_inserted,
        evicted,
    }
}

/// Rebuilds one user's frontier by replaying the retained history under
/// `preference` — the backfill step of `add_user`/`update_user`, shared by
/// the baseline and FilterThenVerify monitors. Linear histories replay
/// object by object; compacting histories dominance-test one
/// representative per distinct value vector and, when it survives, admit
/// the whole id list at once (identical objects are frontier-equivalent,
/// Def. 3.2, and a later dominating arrival evicts every duplicate in one
/// frontier scan), saving a full comparison pass per duplicate.
pub(crate) fn backfill_frontier(
    history: &History,
    preference: &CompiledPreference,
    stats: &mut MonitorStats,
) -> Frontier {
    let mut frontier = Frontier::new();
    match history.grouped() {
        Some(groups) => {
            for (values, ids) in groups {
                let representative = Object::new(ids[0], values.to_vec());
                if update_pareto_frontier(preference, &mut frontier, &representative, stats) {
                    for &id in ids.iter().skip(1) {
                        frontier.insert(id, Object::new(id, values.to_vec()));
                    }
                }
            }
        }
        None => {
            for object in history.iter() {
                update_pareto_frontier(preference, &mut frontier, &object, stats);
            }
        }
    }
    frontier
}

/// One distinct preference and everything derived from it: identical
/// preferences induce identical frontiers (Def. 3.2 depends only on the
/// preference relations), so all users holding this preference share one
/// compiled form and one maintained frontier.
#[derive(Debug, Clone)]
struct Bucket {
    fingerprint: Fingerprint,
    preference: Arc<Preference>,
    compiled: Arc<CompiledPreference>,
    /// Users holding this preference, in registration order.
    members: Vec<UserId>,
    frontier: Frontier,
}

/// Algorithm 1: the per-user baseline monitor.
///
/// Internally the monitor is bucketed by preference [`Fingerprint`] (full
/// equality check on collision): each distinct preference is compiled once
/// and its Pareto frontier maintained once, with arrivals expanded to every
/// member for notification and delta purposes. Per-user observable behavior
/// is unchanged; the work and memory per arrival scale with the number of
/// *distinct* preferences (the paper's Sec. 4 shared-preference premise).
#[derive(Debug, Clone)]
pub struct BaselineMonitor {
    buckets: Vec<Bucket>,
    /// User index → bucket index.
    user_bucket: Vec<usize>,
    /// Fingerprint → bucket indices. More than one bucket per fingerprint
    /// only on hash collision or for twins deliberately kept apart under a
    /// truncating history (see [`Self::add_user`]).
    by_fp: HashMap<Fingerprint, Vec<usize>>,
    /// Retained object history for mid-stream registration/update backfill
    /// (see [`History`] for the cap semantics).
    history: History,
    stats: MonitorStats,
    /// Optional latency histograms (see [`MonitorTimers`]); disabled slots
    /// cost nothing.
    timers: MonitorTimers,
}

impl BaselineMonitor {
    /// Creates a monitor for the given users (indexed by [`UserId`]),
    /// compiling every distinct preference to its bitset form up front. The
    /// object history is unlimited; see [`Self::with_history`].
    pub fn new(preferences: Vec<Preference>) -> Self {
        Self::with_history(preferences, HistoryMode::Unlimited)
    }

    /// Like [`Self::new`], but retains at most `limit` objects of history
    /// (`None` = unlimited): [`Self::add_user`]/[`Self::update_user`]
    /// backfill then becomes best-effort once the cap truncates — the
    /// replayed frontier is the exact frontier of the retained suffix.
    /// Equivalent to [`Self::with_history`] with
    /// [`HistoryMode::from_limit`].
    pub fn with_history_limit(preferences: Vec<Preference>, limit: Option<usize>) -> Self {
        Self::with_history(preferences, HistoryMode::from_limit(limit))
    }

    /// Like [`Self::new`], but with an explicit history retention mode —
    /// in particular [`HistoryMode::Compact`], which keeps
    /// [`Self::add_user`]/[`Self::update_user`] backfill exact for every
    /// preference the monitor has ever observed while retaining only the
    /// skyline union (see [`crate::history`] for the full contract and the
    /// novel-preference caveat).
    pub fn with_history(preferences: Vec<Preference>, mode: HistoryMode) -> Self {
        let mut this = Self {
            buckets: Vec::new(),
            user_bucket: Vec::new(),
            by_fp: HashMap::new(),
            history: History::new(mode),
            stats: MonitorStats::new(),
            timers: MonitorTimers::disabled(),
        };
        for (idx, preference) in preferences.into_iter().enumerate() {
            let user = UserId::from(idx);
            let fingerprint = preference.fingerprint();
            match this.find_bucket(fingerprint, &preference) {
                Some(bucket) => {
                    this.buckets[bucket].members.push(user);
                    this.user_bucket.push(bucket);
                }
                None => {
                    // Compile (and widen the compaction universe) once per
                    // distinct preference, not once per user.
                    this.history.observe(&preference);
                    let bucket =
                        this.push_bucket(fingerprint, preference, vec![user], Frontier::new());
                    this.user_bucket.push(bucket);
                }
            }
        }
        this
    }

    /// The bucket holding exactly `preference`, if any (fingerprint lookup
    /// plus full equality check; first match wins).
    fn find_bucket(&self, fingerprint: Fingerprint, preference: &Preference) -> Option<usize> {
        self.by_fp.get(&fingerprint).and_then(|buckets| {
            buckets
                .iter()
                .copied()
                .find(|&b| self.buckets[b].preference.as_ref() == preference)
        })
    }

    /// Appends a new bucket (compiling the preference) and indexes it.
    fn push_bucket(
        &mut self,
        fingerprint: Fingerprint,
        preference: Preference,
        members: Vec<UserId>,
        frontier: Frontier,
    ) -> usize {
        let bucket = self.buckets.len();
        let compiled = Arc::new(preference.compile());
        self.buckets.push(Bucket {
            fingerprint,
            preference: Arc::new(preference),
            compiled,
            members,
            frontier,
        });
        self.by_fp.entry(fingerprint).or_default().push(bucket);
        bucket
    }

    /// Removes `user_idx` from its bucket, dropping the bucket when its
    /// last member leaves (swap-remove; the moved bucket's members and
    /// fingerprint index are repointed). `user_bucket[user_idx]` is stale
    /// afterwards — the caller either reassigns or discards it.
    fn detach_user(&mut self, user_idx: usize) {
        let b = self.user_bucket[user_idx];
        let user = UserId::from(user_idx);
        let bucket = &mut self.buckets[b];
        bucket.members.retain(|&member| member != user);
        if !bucket.members.is_empty() {
            return;
        }
        let fingerprint = bucket.fingerprint;
        if let Some(buckets) = self.by_fp.get_mut(&fingerprint) {
            buckets.retain(|&other| other != b);
            if buckets.is_empty() {
                self.by_fp.remove(&fingerprint);
            }
        }
        let last = self.buckets.len() - 1;
        self.buckets.swap_remove(b);
        if b < last {
            let moved_fp = self.buckets[b].fingerprint;
            if let Some(buckets) = self.by_fp.get_mut(&moved_fp) {
                for other in buckets {
                    if *other == last {
                        *other = b;
                    }
                }
            }
            let members = self.buckets[b].members.clone();
            for member in members {
                self.user_bucket[member.index()] = b;
            }
        }
    }

    /// Whether twins may share a bucket on registration/update: replaying
    /// the retained history must provably reproduce the live twin frontier.
    /// True for unlimited and uncapped compacting histories (compaction
    /// never drops an object any *observed* preference's frontier needs);
    /// false under a truncating cap — including a compacting history's hard
    /// cap — where backfill is best-effort over the retained set and may
    /// legitimately differ from the live twin.
    fn lossless_history(&self) -> bool {
        matches!(
            self.history.mode(),
            HistoryMode::Unlimited | HistoryMode::Compact { cap: None }
        )
    }

    /// The preference of `user`.
    pub fn preference(&self, user: UserId) -> &Preference {
        &self.buckets[self.user_bucket[user.index()]].preference
    }

    /// Number of distinct preferences currently monitored (= maintained
    /// frontiers).
    pub fn distinct_preferences(&self) -> usize {
        self.buckets.len()
    }

    /// Number of retained history objects (for cap observability).
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Lifetime count of history objects dropped by truncation or
    /// compaction.
    pub fn history_evicted(&self) -> u64 {
        self.history.evicted()
    }

    /// The retained history object ids, ascending (observability/tests).
    pub fn retained_history_ids(&self) -> Vec<ObjectId> {
        self.history.retained_ids()
    }

    /// Forces a compaction sweep of the retained history right now
    /// (no-op unless the monitor was built with [`HistoryMode::Compact`];
    /// sweeps otherwise run automatically every few hundred arrivals).
    pub fn compact_history_now(&mut self) {
        self.history.compact_now();
    }
}

impl ContinuousMonitor for BaselineMonitor {
    fn process(&mut self, object: Object) -> Arrival {
        let timer = self.timers.arrival.clone();
        timed(timer.as_ref(), || {
            let mut targets = Vec::new();
            let mut deltas = DeltaLog::new();
            for bucket in &mut self.buckets {
                // One frontier update per *distinct* preference, expanded
                // to every member: identical preferences have identical
                // frontiers, so the per-user outcome is exactly Alg. 1's.
                let update = update_pareto_frontier_traced(
                    &bucket.compiled,
                    &mut bucket.frontier,
                    &object,
                    &mut self.stats,
                );
                for &member in &bucket.members {
                    for evicted in &update.evicted {
                        deltas.leave(member, *evicted);
                    }
                    if update.newly_inserted {
                        deltas.enter(member, object.id());
                    }
                    if update.is_pareto {
                        targets.push(member);
                    }
                }
            }
            targets.sort_unstable();
            self.stats.record_arrival(targets.len());
            let id = object.id();
            self.history.push(object);
            Arrival {
                object: id,
                target_users: targets,
                deltas: deltas.finish(),
            }
        })
    }

    fn frontier(&self, user: UserId) -> Vec<ObjectId> {
        let bucket = &self.buckets[self.user_bucket[user.index()]];
        let mut ids: Vec<ObjectId> = bucket.frontier.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn num_users(&self) -> usize {
        self.user_bucket.len()
    }

    fn add_user(&mut self, preference: Preference) -> UserId {
        let user = UserId::from(self.user_bucket.len());
        // Widen the compaction universe *before* any replay: from this
        // point on no sweep may evict an object this preference's frontier
        // needs (objects evicted before a genuinely novel preference
        // arrived are the documented caveat — see `crate::history`).
        self.history.observe(&preference);
        let fingerprint = preference.fingerprint();
        if self.lossless_history() {
            // A twin's live frontier IS what the replay would produce:
            // join its bucket in O(1) instead of backfilling.
            if let Some(bucket) = self.find_bucket(fingerprint, &preference) {
                self.buckets[bucket].members.push(user);
                self.user_bucket.push(bucket);
                return user;
            }
        }
        let compiled = preference.compile();
        let timer = self.timers.backfill.clone();
        let frontier = timed(timer.as_ref(), || {
            backfill_frontier(&self.history, &compiled, &mut self.stats)
        });
        let bucket = self.push_bucket(fingerprint, preference, vec![user], frontier);
        self.user_bucket.push(bucket);
        user
    }

    fn update_user(&mut self, user: UserId, preference: Preference) {
        let idx = user.index();
        assert!(idx < self.user_bucket.len(), "user {user} out of range");
        self.history.observe(&preference);
        let fingerprint = preference.fingerprint();
        let lossless = self.lossless_history();
        if lossless {
            let current = &self.buckets[self.user_bucket[idx]];
            if current.preference.as_ref() == &preference {
                // Unchanged preference: the shared frontier is already the
                // exact replay outcome, nothing to do.
                return;
            }
        }
        // Leave the old bucket first — it may die, shifting bucket indices
        // — then join a twin bucket (lossless only) or backfill a new one.
        self.detach_user(idx);
        if lossless {
            if let Some(bucket) = self.find_bucket(fingerprint, &preference) {
                self.buckets[bucket].members.push(UserId::from(idx));
                self.user_bucket[idx] = bucket;
                return;
            }
        }
        let compiled = preference.compile();
        let timer = self.timers.backfill.clone();
        let frontier = timed(timer.as_ref(), || {
            backfill_frontier(&self.history, &compiled, &mut self.stats)
        });
        let bucket = self.push_bucket(fingerprint, preference, vec![UserId::from(idx)], frontier);
        self.user_bucket[idx] = bucket;
    }

    fn remove_user(&mut self, user: UserId) -> Option<UserId> {
        let idx = user.index();
        assert!(idx < self.user_bucket.len(), "user {user} out of range");
        self.detach_user(idx);
        let last = self.user_bucket.len() - 1;
        self.user_bucket.swap_remove(idx);
        if idx == last {
            return None;
        }
        // The previously-last user now answers to `idx`: rename it inside
        // its bucket's member list.
        let moved = UserId::from(last);
        let renamed = UserId::from(idx);
        for member in &mut self.buckets[self.user_bucket[idx]].members {
            if *member == moved {
                *member = renamed;
            }
        }
        Some(moved)
    }

    fn observe_preference(&mut self, preference: &Preference) {
        self.history.observe(preference);
    }

    fn set_timers(&mut self, timers: MonitorTimers) {
        self.history.set_sweep_timer(timers.sweep.clone());
        self.timers = timers;
    }

    fn stats(&self) -> MonitorStats {
        let mut stats = self.stats;
        stats.history_objects = self.history.len() as u64;
        stats.history_evicted = self.history.evicted();
        stats.history_bytes = self.history.approx_bytes();
        stats.distinct_preferences = self.buckets.len() as u64;
        stats.preference_bytes = self
            .buckets
            .iter()
            .map(|b| b.preference.approx_bytes() + b.compiled.approx_bytes())
            .sum::<usize>() as u64;
        stats
    }

    fn export_state(&self) -> MonitorState {
        MonitorState {
            history: Some(self.history.export_state()),
            window: None,
            stats: self.stats,
        }
    }

    fn import_state(&mut self, state: MonitorState) {
        if let Some(history) = state.history {
            self.history.import_state(history);
        }
    }

    fn restore_stats(&mut self, stats: MonitorStats) {
        self.stats.arrivals = stats.arrivals;
        self.stats.expirations = stats.expirations;
        self.stats.comparisons = stats.comparisons;
        self.stats.notifications = stats.notifications;
    }

    fn member_preferences(&self) -> Vec<Preference> {
        self.user_bucket
            .iter()
            .map(|&b| self.buckets[b].preference.as_ref().clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::ContinuousMonitor;
    use pm_model::{AttrId, ValueId};

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn a(i: u32) -> AttrId {
        AttrId::new(i)
    }

    fn obj(id: u64, vals: &[u32]) -> Object {
        Object::new(ObjectId::new(id), vals.iter().map(|&x| v(x)).collect())
    }

    /// The laptop example of Tables 1 & 2 (users c1 and c2).
    ///
    /// display: 9.9-under=0, 10-12.9=1, 13-15.9=2, 16-18.9=3, 19-up=4
    /// brand:   Apple=0, Lenovo=1, Samsung=2, Sony=3, Toshiba=4
    /// cpu:     single=0, dual=1, triple=2, quad=3
    fn laptop_users() -> Vec<Preference> {
        let mut c1 = Preference::new(3);
        c1.prefer(a(0), v(2), v(1));
        c1.prefer(a(0), v(1), v(3));
        c1.prefer(a(0), v(1), v(4));
        c1.prefer(a(0), v(1), v(0));
        c1.prefer(a(1), v(0), v(1));
        c1.prefer(a(1), v(1), v(4));
        c1.prefer(a(1), v(1), v(2));
        c1.prefer(a(1), v(0), v(3));
        c1.prefer(a(2), v(1), v(2));
        c1.prefer(a(2), v(1), v(3));
        c1.prefer(a(2), v(2), v(0));
        c1.prefer(a(2), v(3), v(0));

        let mut c2 = Preference::new(3);
        // display: 13-15.9 ≻ {10-12.9, 16-18.9}, 16-18.9 ≻ 19-up ≻ 9.9-under,
        //          10-12.9 ≻ 9.9-under
        c2.prefer(a(0), v(2), v(1));
        c2.prefer(a(0), v(2), v(3));
        c2.prefer(a(0), v(3), v(4));
        c2.prefer(a(0), v(4), v(0));
        c2.prefer(a(0), v(1), v(0));
        // brand: Apple ≻ Toshiba, Lenovo ≻ Toshiba, Toshiba ≻ Sony,
        //        Lenovo ≻ Samsung
        c2.prefer(a(1), v(0), v(4));
        c2.prefer(a(1), v(1), v(4));
        c2.prefer(a(1), v(4), v(3));
        c2.prefer(a(1), v(1), v(2));
        // cpu: quad ≻ triple ≻ dual ≻ single
        c2.prefer(a(2), v(3), v(2));
        c2.prefer(a(2), v(2), v(1));
        c2.prefer(a(2), v(1), v(0));
        vec![c1, c2]
    }

    /// Objects o1–o14 of Table 1 (see `laptop_users` for the encoding).
    fn laptop_objects() -> Vec<Object> {
        vec![
            obj(1, &[1, 0, 0]),  // o1: 12, Apple, single
            obj(2, &[2, 0, 1]),  // o2: 14, Apple, dual
            obj(3, &[2, 2, 1]),  // o3: 15, Samsung, dual
            obj(4, &[4, 4, 1]),  // o4: 19, Toshiba, dual
            obj(5, &[0, 2, 3]),  // o5: 9, Samsung, quad
            obj(6, &[1, 3, 0]),  // o6: 11.5, Sony, single
            obj(7, &[0, 1, 3]),  // o7: 9.5, Lenovo, quad
            obj(8, &[1, 0, 1]),  // o8: 12.5, Apple, dual
            obj(9, &[4, 3, 0]),  // o9: 19.5, Sony, single
            obj(10, &[0, 1, 2]), // o10: 9.5, Lenovo, triple
            obj(11, &[0, 4, 2]), // o11: 9, Toshiba, triple
            obj(12, &[0, 2, 2]), // o12: 8.5, Samsung, triple
            obj(13, &[2, 3, 1]), // o13: 14.5, Sony, dual
            obj(14, &[3, 3, 0]), // o14: 17, Sony, single
        ]
    }

    #[test]
    fn example_3_5_frontiers_after_o1_to_o14() {
        let mut m = BaselineMonitor::new(laptop_users());
        for o in laptop_objects() {
            m.process(o);
        }
        assert_eq!(m.frontier(UserId::new(0)), vec![ObjectId::new(2)]);
        // Example 3.5 lists Pc2 after o15; before o15, c2's frontier also
        // contains o7 (9.5", Lenovo, quad) per Example 4.8.
        assert_eq!(
            m.frontier(UserId::new(1)),
            vec![ObjectId::new(2), ObjectId::new(3), ObjectId::new(7)]
        );
    }

    #[test]
    fn example_1_1_o15_targets_only_c2() {
        let mut m = BaselineMonitor::new(laptop_users());
        for o in laptop_objects() {
            m.process(o);
        }
        let arrival = m.process(obj(15, &[3, 1, 3])); // 16.5, Lenovo, quad
        assert_eq!(arrival.target_users, vec![UserId::new(1)]);
        assert_eq!(
            m.frontier(UserId::new(1)),
            vec![ObjectId::new(2), ObjectId::new(3), ObjectId::new(15)]
        );
        // o16 (16, Toshiba, single) is Pareto-optimal for nobody.
        let arrival16 = m.process(obj(16, &[3, 4, 0]));
        assert!(arrival16.target_users.is_empty());
    }

    #[test]
    fn frontiers_match_naive_oracle() {
        let users = laptop_users();
        let objects = laptop_objects();
        let mut m = BaselineMonitor::new(users.clone());
        for o in objects.clone() {
            m.process(o);
        }
        for (idx, pref) in users.iter().enumerate() {
            let mut oracle = pm_porder::naive_pareto_frontier(pref, &objects);
            oracle.sort_unstable();
            assert_eq!(m.frontier(UserId::from(idx)), oracle, "user {idx}");
        }
    }

    #[test]
    fn identical_objects_share_the_frontier() {
        let users = laptop_users();
        let mut m = BaselineMonitor::new(users);
        m.process(obj(1, &[2, 0, 1]));
        let arrival = m.process(obj(2, &[2, 0, 1]));
        assert_eq!(arrival.target_users.len(), 2);
        assert_eq!(
            m.frontier(UserId::new(0)),
            vec![ObjectId::new(1), ObjectId::new(2)]
        );
    }

    #[test]
    fn dominated_object_is_removed_later() {
        let users = laptop_users();
        let mut m = BaselineMonitor::new(users);
        // o1 is initially Pareto-optimal for everyone, o2 later replaces it
        // for c1 and c2 (scenario (ii) of Sec. 1).
        let a1 = m.process(obj(1, &[1, 0, 0]));
        assert_eq!(a1.target_users.len(), 2);
        m.process(obj(2, &[2, 0, 1]));
        assert_eq!(m.frontier(UserId::new(0)), vec![ObjectId::new(2)]);
        assert_eq!(m.frontier(UserId::new(1)), vec![ObjectId::new(2)]);
    }

    #[test]
    fn stats_count_arrivals_and_comparisons() {
        let mut m = BaselineMonitor::new(laptop_users());
        for o in laptop_objects() {
            m.process(o);
        }
        let stats = m.stats();
        assert_eq!(stats.arrivals, 14);
        assert!(stats.comparisons > 0);
        assert_eq!(stats.expirations, 0);
        assert!(stats.comparisons_per_arrival() > 0.0);
    }

    #[test]
    fn empty_user_set_accepts_objects() {
        let mut m = BaselineMonitor::new(vec![]);
        let arrival = m.process(obj(1, &[0, 0, 0]));
        assert!(arrival.target_users.is_empty());
        assert_eq!(m.num_users(), 0);
    }

    #[test]
    fn added_user_is_backfilled_from_the_full_history() {
        let users = laptop_users();
        let mut m = BaselineMonitor::new(vec![users[0].clone()]);
        for o in laptop_objects() {
            m.process(o);
        }
        // Register c2 mid-stream: its frontier must equal that of a monitor
        // that had c2 from the start.
        let added = m.add_user(users[1].clone());
        assert_eq!(added, UserId::new(1));
        let mut from_start = BaselineMonitor::new(users);
        for o in laptop_objects() {
            from_start.process(o);
        }
        assert_eq!(m.frontier(added), from_start.frontier(UserId::new(1)));
        // Subsequent arrivals notify the registered user normally.
        let arrival = m.process(obj(15, &[3, 1, 3]));
        assert_eq!(arrival.target_users, vec![UserId::new(1)]);
    }

    #[test]
    fn remove_user_swap_renumbers_the_last_user() {
        let users = laptop_users();
        let mut m = BaselineMonitor::new(users.clone());
        for o in laptop_objects() {
            m.process(o);
        }
        let c2_frontier = m.frontier(UserId::new(1));
        // Removing user 0 moves user 1 into slot 0.
        assert_eq!(m.remove_user(UserId::new(0)), Some(UserId::new(1)));
        assert_eq!(m.num_users(), 1);
        assert_eq!(m.frontier(UserId::new(0)), c2_frontier);
        // Removing the (now) last user returns None.
        assert_eq!(m.remove_user(UserId::new(0)), None);
        assert_eq!(m.num_users(), 0);
    }

    #[test]
    fn updated_user_matches_from_start_monitor_and_keeps_its_id() {
        let users = laptop_users();
        let mut m = BaselineMonitor::new(users.clone());
        for o in laptop_objects() {
            m.process(o);
        }
        // Swap c1's preference for c2's mid-stream: the frontier must equal
        // that of a monitor built with c2's preference from the start, and
        // neither user's id moves.
        m.update_user(UserId::new(0), users[1].clone());
        assert_eq!(m.num_users(), 2);
        let mut from_start = BaselineMonitor::new(vec![users[1].clone(), users[1].clone()]);
        for o in laptop_objects() {
            from_start.process(o);
        }
        assert_eq!(
            m.frontier(UserId::new(0)),
            from_start.frontier(UserId::new(0))
        );
        assert_eq!(
            m.frontier(UserId::new(1)),
            from_start.frontier(UserId::new(1))
        );
        // Subsequent arrivals run against the new preference.
        let arrival = m.process(obj(15, &[3, 1, 3]));
        assert_eq!(arrival.target_users, vec![UserId::new(0), UserId::new(1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_of_unknown_user_panics() {
        let mut m = BaselineMonitor::new(laptop_users());
        m.update_user(UserId::new(9), Preference::new(3));
    }

    #[test]
    fn history_cap_bounds_memory_and_makes_backfill_best_effort() {
        let users = laptop_users();
        let mut capped = BaselineMonitor::with_history_limit(vec![users[0].clone()], Some(4));
        let mut unlimited = BaselineMonitor::new(vec![users[0].clone()]);
        for o in laptop_objects() {
            capped.process(o.clone());
            unlimited.process(o);
        }
        assert_eq!(capped.history_len(), 4);
        assert_eq!(unlimited.history_len(), 14);
        // Live frontiers are unaffected by the cap: only backfill is.
        assert_eq!(
            capped.frontier(UserId::new(0)),
            unlimited.frontier(UserId::new(0))
        );
        // A late registration backfills from the retained suffix only: it
        // sees every retained true-frontier object, and every object it
        // reports is from the retained suffix (ids 11..=14 here).
        let added = capped.add_user(users[1].clone());
        let reference = unlimited.add_user(users[1].clone());
        let best_effort = capped.frontier(added);
        let exact = unlimited.frontier(reference);
        for id in &exact {
            if id.raw() > 10 {
                assert!(
                    best_effort.contains(id),
                    "retained frontier object {id} lost"
                );
            }
        }
        for id in &best_effort {
            assert!(id.raw() > 10, "backfill invented a truncated object {id}");
        }
    }

    #[test]
    fn compacting_history_keeps_backfill_exact_for_observed_preferences() {
        let users = laptop_users();
        // Both preferences are observed at construction; c2 then leaves.
        let mut compact =
            BaselineMonitor::with_history(users.clone(), HistoryMode::Compact { cap: None });
        let mut unlimited = BaselineMonitor::new(users.clone());
        compact.remove_user(UserId::new(1));
        unlimited.remove_user(UserId::new(1));
        for o in laptop_objects() {
            compact.process(o.clone());
            unlimited.process(o);
        }
        compact.compact_history_now();
        // Compaction genuinely dropped objects no observed preference needs.
        assert!(compact.history_len() < unlimited.history_len());
        assert!(compact.history_evicted() > 0);
        assert_eq!(
            compact.history_evicted(),
            (unlimited.history_len() - compact.history_len()) as u64
        );
        // Live frontiers are never affected by history retention.
        assert_eq!(
            compact.frontier(UserId::new(0)),
            unlimited.frontier(UserId::new(0))
        );
        // Re-registering the previously seen preference is backfilled
        // exactly — the universe never forgets a preference.
        let a_compact = compact.add_user(users[1].clone());
        let a_unlimited = unlimited.add_user(users[1].clone());
        assert_eq!(compact.frontier(a_compact), unlimited.frontier(a_unlimited));
        // An in-place update to the other observed preference is exact too.
        compact.update_user(UserId::new(0), users[1].clone());
        unlimited.update_user(UserId::new(0), users[1].clone());
        assert_eq!(
            compact.frontier(UserId::new(0)),
            unlimited.frontier(UserId::new(0))
        );
        // The stats gauges surface the retained size and the savings.
        let stats = compact.stats();
        assert_eq!(stats.history_objects, compact.history_len() as u64);
        assert_eq!(stats.history_evicted, compact.history_evicted());
    }

    #[test]
    fn compacting_history_retains_all_value_duplicates() {
        let users = laptop_users();
        let mut m = BaselineMonitor::with_history(
            vec![users[0].clone()],
            HistoryMode::Compact { cap: None },
        );
        // Three identical strong objects plus one dominated one.
        m.process(obj(1, &[2, 0, 1]));
        m.process(obj(2, &[2, 0, 1]));
        m.process(obj(3, &[2, 0, 1]));
        m.process(obj(4, &[1, 0, 0]));
        m.compact_history_now();
        let retained = m.retained_history_ids();
        assert!(
            retained.contains(&ObjectId::new(1))
                && retained.contains(&ObjectId::new(2))
                && retained.contains(&ObjectId::new(3)),
            "identical frontier objects must all survive: {retained:?}"
        );
        // A late registration of the same preference reports all three.
        let added = m.add_user(users[0].clone());
        assert_eq!(
            m.frontier(added),
            vec![ObjectId::new(1), ObjectId::new(2), ObjectId::new(3)]
        );
    }

    #[test]
    fn compact_hard_cap_bounds_memory_best_effort() {
        let users = laptop_users();
        let mut m =
            BaselineMonitor::with_history(users.clone(), HistoryMode::Compact { cap: Some(4) });
        for o in laptop_objects() {
            m.process(o);
        }
        assert!(m.history_len() <= 4, "hard cap must bound the retained set");
        // Backfill still works (best-effort once the cap bit): every
        // reported object is genuinely retained.
        let added = m.add_user(users[1].clone());
        let retained = m.retained_history_ids();
        for id in m.frontier(added) {
            assert!(retained.contains(&id));
        }
    }

    #[test]
    fn twins_share_one_bucket_and_frontier() {
        let users = laptop_users();
        let population = vec![
            users[0].clone(),
            users[1].clone(),
            users[0].clone(),
            users[1].clone(),
        ];
        let mut m = BaselineMonitor::new(population);
        assert_eq!(m.distinct_preferences(), 2);
        for o in laptop_objects() {
            m.process(o);
        }
        assert_eq!(m.frontier(UserId::new(0)), m.frontier(UserId::new(2)));
        assert_eq!(m.frontier(UserId::new(1)), m.frontier(UserId::new(3)));
        let stats = m.stats();
        assert_eq!(stats.distinct_preferences, 2);
        assert!(stats.preference_bytes > 0);
        // A late twin joins its bucket in O(1) — no new frontier appears.
        let added = m.add_user(users[0].clone());
        assert_eq!(m.distinct_preferences(), 2);
        assert_eq!(m.frontier(added), m.frontier(UserId::new(0)));
        // An update onto the other existing preference coalesces buckets …
        m.update_user(UserId::new(2), users[1].clone());
        assert_eq!(m.distinct_preferences(), 2);
        assert_eq!(m.frontier(UserId::new(2)), m.frontier(UserId::new(1)));
        // … and an update onto a novel preference splits one off.
        m.update_user(UserId::new(3), Preference::new(3));
        assert_eq!(m.distinct_preferences(), 3);
        // Targets stay per-user and sorted.
        let arrival = m.process(obj(15, &[3, 1, 3]));
        let mut sorted = arrival.target_users.clone();
        sorted.sort_unstable();
        assert_eq!(arrival.target_users, sorted);
        // Removing the last holder of a preference drops its bucket.
        while m.num_users() > 0 {
            m.remove_user(UserId::new(0));
        }
        assert_eq!(m.distinct_preferences(), 0);
    }

    #[test]
    fn truncating_history_keeps_late_twins_exact_to_the_suffix() {
        let users = laptop_users();
        let mut m = BaselineMonitor::with_history_limit(vec![users[0].clone()], Some(4));
        for o in laptop_objects() {
            m.process(o);
        }
        // Under a truncating cap a late twin must NOT inherit the live
        // frontier: its documented contract is the exact frontier of the
        // retained suffix (ids 11..=14 here), so it gets its own bucket.
        let added = m.add_user(users[0].clone());
        assert_eq!(m.distinct_preferences(), 2);
        for id in m.frontier(added) {
            assert!(id.raw() > 10, "backfill invented a truncated object {id}");
        }
        assert_ne!(m.frontier(added), m.frontier(UserId::new(0)));
    }

    #[test]
    fn user_with_empty_preference_keeps_everything() {
        let mut m = BaselineMonitor::new(vec![Preference::new(3)]);
        for o in laptop_objects() {
            let arrival = m.process(o);
            assert_eq!(arrival.target_users, vec![UserId::new(0)]);
        }
        assert_eq!(m.frontier(UserId::new(0)).len(), 14);
    }
}
