//! Optional latency timers a host hands to a monitor.
//!
//! Monitors are pure data structures; the serving layer is what cares how
//! long each operation takes. [`MonitorTimers`] is a bundle of shared
//! [`LogHistogram`]s the host passes in via
//! [`crate::ContinuousMonitor::set_timers`]: each present histogram is
//! recorded by the monitor at the corresponding point (nanoseconds), and an
//! absent one costs the monitor nothing — not even a clock read. The
//! histograms are `Arc`-shared, so a sharded host can hand the same bundle
//! to every shard and read one merged distribution.

use std::sync::Arc;

use pm_obs::LogHistogram;

/// Shared duration histograms for a monitor's hot paths (nanoseconds).
/// `None` slots disable both recording and the clock reads around them.
#[derive(Debug, Clone, Default)]
pub struct MonitorTimers {
    /// One [`crate::ContinuousMonitor::process`] call: comparing an arrived
    /// object against every user (or cluster) frontier.
    pub arrival: Option<Arc<LogHistogram>>,
    /// One backfill replay — the history (or window) scan behind
    /// [`crate::ContinuousMonitor::add_user`] /
    /// [`crate::ContinuousMonitor::update_user`].
    pub backfill: Option<Arc<LogHistogram>>,
    /// One history compaction sweep ([`crate::History`] in
    /// [`crate::HistoryMode::Compact`]).
    pub sweep: Option<Arc<LogHistogram>>,
}

impl MonitorTimers {
    /// A bundle with every slot disabled (same as `default()`).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether any slot records.
    pub fn is_enabled(&self) -> bool {
        self.arrival.is_some() || self.backfill.is_some() || self.sweep.is_some()
    }
}

/// Runs `body` and records its duration into `timer` when present. The
/// clock is only read when a timer is attached.
#[inline]
pub(crate) fn timed<T>(timer: Option<&Arc<LogHistogram>>, body: impl FnOnce() -> T) -> T {
    match timer {
        Some(timer) => {
            let start = std::time::Instant::now();
            let result = body();
            timer.record_duration(start.elapsed());
            result
        }
        None => body(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_records_nowhere() {
        let timers = MonitorTimers::disabled();
        assert!(!timers.is_enabled());
        assert_eq!(timed(timers.arrival.as_ref(), || 7), 7);
    }

    #[test]
    fn timed_records_into_an_attached_histogram() {
        let histogram = Arc::new(LogHistogram::new());
        let timer = Some(Arc::clone(&histogram));
        let value = timed(timer.as_ref(), || 41 + 1);
        assert_eq!(value, 42);
        assert_eq!(histogram.count(), 1);
    }
}
