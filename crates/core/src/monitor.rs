//! The common interface implemented by every monitoring algorithm.

use pm_model::{Object, ObjectId, UserId};
use pm_porder::Preference;

use crate::delta::FrontierDelta;
use crate::stats::MonitorStats;
use crate::timers::MonitorTimers;

/// The result of processing one arriving object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// The id of the processed object.
    pub object: ObjectId,
    /// The target users `C_o`: every user for whom the object is
    /// Pareto-optimal at arrival time, in ascending user-id order.
    pub target_users: Vec<UserId>,
    /// The net frontier membership changes this arrival caused (the arriving
    /// object entering target users' frontiers, dominated objects leaving,
    /// and — for sliding-window monitors — the expiry and Def. 7.4 mending
    /// that ride on the same arrival), in canonical `(user, object)` order.
    /// See [`crate::delta`] for the canonical-form guarantees.
    pub deltas: Vec<FrontierDelta>,
}

impl Arrival {
    /// Whether the object was Pareto-optimal for at least one user.
    pub fn has_targets(&self) -> bool {
        !self.target_users.is_empty()
    }
}

/// The portion of a compacting (or linear) ingested history that must
/// survive a crash: the retained objects, the preferences whose frontiers
/// gate eviction, and the lazy-sweep bookkeeping counters.
///
/// Exported by [`crate::History::export_state`] and restored verbatim by
/// [`crate::History::import_state`] — no sweep runs during import, so the
/// retained set (and therefore every later sweep decision) evolves exactly
/// as it would have in an uninterrupted run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistoryState {
    /// Every preference absorbed into the eviction universe, in the order
    /// it was first observed (empty for non-compacting histories).
    pub observed: Vec<Preference>,
    /// The retained objects in ascending object-id order. For a compacting
    /// history this is the flattened group content — duplicates appear once
    /// per retaining id, so id-list multiplicity round-trips.
    pub objects: Vec<Object>,
    /// Pushes since the last lazy sweep (compact mode only).
    pub pending: u64,
    /// Objects dropped by sweeps or caps since construction.
    pub evicted: u64,
}

/// A monitor's durable state, exported for snapshots and restored on
/// recovery. Exactly one of `history` / `window` is populated: append-only
/// monitors persist their ingested [`crate::History`], sliding-window
/// monitors persist the window content (their state is a pure function of
/// the preferences and the last `W` objects in arrival order).
#[derive(Debug, Clone, Default)]
pub struct MonitorState {
    /// Ingested-history state (append-only monitors).
    pub history: Option<HistoryState>,
    /// Window content, oldest first (sliding-window monitors).
    pub window: Option<Vec<Object>>,
    /// Work counters at export time. Only the four stream counters
    /// (arrivals, expirations, comparisons, notifications) are meaningful;
    /// history gauges are recomputed live after import.
    pub stats: MonitorStats,
}

/// A continuous Pareto-frontier monitor.
///
/// Implementations differ in how much computation they share across users
/// (none for the baseline, cluster-level filtering for FilterThenVerify) and
/// in whether objects expire (sliding-window variants), but they expose the
/// same interface so that experiments can swap them freely.
pub trait ContinuousMonitor {
    /// Processes one arriving object and returns its target users.
    fn process(&mut self, object: Object) -> Arrival;

    /// The current Pareto frontier of `user`, in ascending object-id order.
    fn frontier(&self, user: UserId) -> Vec<ObjectId>;

    /// Number of users served by this monitor.
    fn num_users(&self) -> usize;

    /// Registers a new user mid-stream, assigning the next local user id
    /// (equal to [`Self::num_users`] before the call) and returning it.
    ///
    /// The user's state is backfilled from the currently *alive* objects —
    /// append-only monitors replay the retained ingested history,
    /// sliding-window monitors replay the window — so the user's frontier
    /// is identical to that of a monitor built with the user present from
    /// the start, restricted to the alive objects. With a compacting
    /// history ([`crate::HistoryMode::Compact`]) the replay is exact for
    /// every preference the monitor has ever observed (and best-effort for
    /// a genuinely novel one); with a truncating cap it is best-effort
    /// once the cap bites. Backfilling reports no notifications; only
    /// genuine arrivals do.
    fn add_user(&mut self, preference: Preference) -> UserId;

    /// Removes `user` in O(1) swap-remove fashion: the user with the
    /// highest local id (when different from `user`) is renumbered to
    /// `user`'s id. Returns the renumbered user's previous id, or `None`
    /// when `user` already held the highest id.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    fn remove_user(&mut self, user: UserId) -> Option<UserId>;

    /// Replaces `user`'s preference **in place**, keeping its local id (no
    /// swap-remove, no renumbering of any user).
    ///
    /// The user's frontier is repaired by replay under the new preference —
    /// append-only monitors replay the retained object history (exact when
    /// the history is unlimited or compacting over observed preferences,
    /// documented best-effort once a truncating cap has bitten or the new
    /// preference is genuinely novel to a compacting history), sliding
    /// monitors replay the window (frontier plus the Def. 7.4 Pareto
    /// buffer). Cluster-based monitors additionally
    /// repair the user's cluster: the user stays put when its new relations
    /// still fit, else it is moved, without touching any other user's state.
    /// Like registration backfill, the replay reports no notifications.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    fn update_user(&mut self, user: UserId, preference: Preference);

    /// Observes a preference *without* registering a user for it: monitors
    /// with a compacting history ([`crate::HistoryMode::Compact`]) widen
    /// their eviction universe so no later sweep drops an object this
    /// preference's frontier needs. A sharded engine broadcasts every
    /// registered/updated preference to all shards through this hook, so
    /// the compaction universe is global even though each shard only owns
    /// a slice of the users. Monitors without a compacting history ignore
    /// the call (the default).
    fn observe_preference(&mut self, preference: &Preference) {
        let _ = preference;
    }

    /// Attaches latency timers ([`MonitorTimers`]): monitors that support
    /// instrumentation record per-arrival processing time, backfill-replay
    /// duration and compaction-sweep duration into the attached histograms
    /// from then on. The default ignores the call — a monitor without
    /// instrumentation still satisfies the trait, and hosts may always
    /// call this unconditionally.
    fn set_timers(&mut self, timers: MonitorTimers) {
        let _ = timers;
    }

    /// Work counters accumulated so far.
    fn stats(&self) -> MonitorStats;

    /// Exports the monitor's durable state for a snapshot. The default
    /// returns an empty [`MonitorState`] for monitors without durable
    /// state.
    fn export_state(&self) -> MonitorState {
        MonitorState::default()
    }

    /// Restores durable state exported by [`Self::export_state`] into a
    /// monitor that has **no users yet**: the history (or window) is
    /// installed verbatim, after which members are re-registered through
    /// [`Self::add_user`] so their frontiers backfill from the restored
    /// alive objects. Work counters are *not* restored here — call
    /// [`Self::restore_stats`] after re-registration so backfill replay
    /// does not pollute them. The default ignores the call.
    fn import_state(&mut self, state: MonitorState) {
        let _ = state;
    }

    /// Overwrites the four stream work counters (arrivals, expirations,
    /// comparisons, notifications) with snapshot-time values; history
    /// gauges keep being computed live. The default ignores the call.
    fn restore_stats(&mut self, stats: MonitorStats) {
        let _ = stats;
    }

    /// The registered preferences in local-user-id order, so a snapshot
    /// can pair each member with its preference. The default (for monitors
    /// that do not retain build preferences) returns an empty vector.
    fn member_preferences(&self) -> Vec<Preference> {
        Vec::new()
    }

    /// Convenience: processes a whole sequence of arrivals, returning one
    /// [`Arrival`] per object.
    fn process_all<I>(&mut self, objects: I) -> Vec<Arrival>
    where
        I: IntoIterator<Item = Object>,
        Self: Sized,
    {
        objects.into_iter().map(|o| self.process(o)).collect()
    }

    /// Convenience: the frontiers of all users, indexed by user id.
    fn all_frontiers(&self) -> Vec<Vec<ObjectId>>
    where
        Self: Sized,
    {
        (0..self.num_users())
            .map(|u| self.frontier(UserId::from(u)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_has_targets() {
        let a = Arrival {
            object: ObjectId::new(1),
            target_users: vec![UserId::new(0)],
            deltas: vec![FrontierDelta::enter(UserId::new(0), ObjectId::new(1))],
        };
        assert!(a.has_targets());
        let b = Arrival {
            object: ObjectId::new(2),
            target_users: vec![],
            deltas: vec![],
        };
        assert!(!b.has_targets());
    }
}
