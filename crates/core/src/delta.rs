//! Frontier deltas: the enter/leave events one arrival causes.
//!
//! Every monitor already knows, while processing an arrival, exactly which
//! objects entered and left which users' frontiers — the arriving object
//! enters the frontiers of its target users, the objects it dominates
//! leave, and (in the sliding-window family) the expiry that rides on the
//! same arrival removes the expired object and promotes buffered objects
//! back in (Def. 7.4 mending). [`FrontierDelta`] surfaces those membership
//! changes on the [`crate::Arrival`] so a serving layer can *push* frontier
//! updates to subscribers instead of making clients poll.
//!
//! Deltas are reported in **canonical net form**: for each `(user, object)`
//! pair at most one delta, the *net* membership change of the arrival
//! (an object promoted by expiry mending and immediately re-evicted by the
//! arriving object cancels out), sorted by `(user, object)`. Canonical form
//! makes the delta list a pure function of the pre- and post-arrival
//! frontier sets, so a sharded engine merging disjoint per-shard delta
//! lists reports byte-identical deltas to a single-threaded monitor.

use pm_model::{ObjectId, UserId};

/// One user's frontier membership change: `object` entered (`entered ==
/// true`) or left the Pareto frontier of `user`.
///
/// The derived ordering sorts by user, then object — the canonical order
/// [`crate::Arrival::deltas`] is reported in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrontierDelta {
    /// The user whose frontier changed.
    pub user: UserId,
    /// The object that entered or left.
    pub object: ObjectId,
    /// `true` when the object entered the frontier, `false` when it left.
    pub entered: bool,
}

impl FrontierDelta {
    /// An enter event.
    pub fn enter(user: UserId, object: ObjectId) -> Self {
        Self {
            user,
            object,
            entered: true,
        }
    }

    /// A leave event.
    pub fn leave(user: UserId, object: ObjectId) -> Self {
        Self {
            user,
            object,
            entered: false,
        }
    }
}

/// Collects raw membership transitions during one arrival and canonicalizes
/// them into the net delta list (see the module docs).
///
/// Only *real* transitions may be recorded: an `enter` for an insert that
/// actually added a new key, a `leave` for a remove that actually hit. Under
/// that contract the transitions of one `(user, object)` pair alternate, so
/// the net effect is `-1`, `0` or `+1` and [`DeltaLog::finish`] folds each
/// pair to at most one delta.
#[derive(Debug, Default)]
pub(crate) struct DeltaLog {
    events: Vec<FrontierDelta>,
}

impl DeltaLog {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records that `object` was newly inserted into `user`'s frontier.
    pub(crate) fn enter(&mut self, user: UserId, object: ObjectId) {
        self.events.push(FrontierDelta::enter(user, object));
    }

    /// Records that `object` was removed from `user`'s frontier.
    pub(crate) fn leave(&mut self, user: UserId, object: ObjectId) {
        self.events.push(FrontierDelta::leave(user, object));
    }

    /// Canonicalizes the raw transitions: cancels enter/leave pairs of the
    /// same `(user, object)` and returns the survivors sorted by
    /// `(user, object)`.
    pub(crate) fn finish(mut self) -> Vec<FrontierDelta> {
        self.events
            .sort_unstable_by_key(|d| (d.user, d.object, d.entered));
        let mut out = Vec::with_capacity(self.events.len());
        let mut i = 0;
        while i < self.events.len() {
            let mut j = i + 1;
            let mut net: i32 = if self.events[i].entered { 1 } else { -1 };
            while j < self.events.len()
                && self.events[j].user == self.events[i].user
                && self.events[j].object == self.events[i].object
            {
                net += if self.events[j].entered { 1 } else { -1 };
                j += 1;
            }
            debug_assert!(
                (-1..=1).contains(&net),
                "transitions of one (user, object) pair must alternate"
            );
            match net {
                1 => out.push(FrontierDelta::enter(
                    self.events[i].user,
                    self.events[i].object,
                )),
                -1 => out.push(FrontierDelta::leave(
                    self.events[i].user,
                    self.events[i].object,
                )),
                _ => {}
            }
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u32) -> UserId {
        UserId::new(i)
    }

    fn o(i: u64) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn finish_sorts_by_user_then_object() {
        let mut log = DeltaLog::new();
        log.enter(u(2), o(5));
        log.leave(u(0), o(9));
        log.enter(u(0), o(1));
        assert_eq!(
            log.finish(),
            vec![
                FrontierDelta::enter(u(0), o(1)),
                FrontierDelta::leave(u(0), o(9)),
                FrontierDelta::enter(u(2), o(5)),
            ]
        );
    }

    #[test]
    fn finish_cancels_enter_leave_pairs() {
        // A buffered object promoted by expiry mending and re-evicted by
        // the arriving object nets to no delta at all.
        let mut log = DeltaLog::new();
        log.enter(u(1), o(3));
        log.leave(u(1), o(3));
        log.enter(u(1), o(4));
        assert_eq!(log.finish(), vec![FrontierDelta::enter(u(1), o(4))]);
    }

    #[test]
    fn finish_keeps_distinct_users_apart() {
        let mut log = DeltaLog::new();
        log.leave(u(1), o(3));
        log.enter(u(2), o(3));
        assert_eq!(
            log.finish(),
            vec![
                FrontierDelta::leave(u(1), o(3)),
                FrontierDelta::enter(u(2), o(3)),
            ]
        );
    }

    #[test]
    fn delta_ordering_is_user_then_object() {
        let mut deltas = [
            FrontierDelta::enter(u(1), o(2)),
            FrontierDelta::leave(u(0), o(7)),
            FrontierDelta::enter(u(0), o(3)),
        ];
        deltas.sort_unstable();
        assert_eq!(deltas[0].user, u(0));
        assert_eq!(deltas[0].object, o(3));
        assert_eq!(deltas[2].user, u(1));
    }
}
