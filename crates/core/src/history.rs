//! The retained object history of the append-only monitors.
//!
//! Append-only monitors never expire objects, so a user registered (or
//! updated) mid-stream must be backfilled against the past stream — any
//! past object may be Pareto-optimal under the new preference. On unbounded
//! streams a verbatim history is unbounded, so [`History`] supports three
//! retention disciplines ([`HistoryMode`]):
//!
//! * **Unlimited** — keep everything; backfill is exact for any preference.
//! * **Truncate(C)** — keep the newest `C` objects; backfill is
//!   *best-effort*: the replayed frontier is the exact Pareto frontier of
//!   the retained suffix, which contains every still-retained member of
//!   the true frontier but may miss truncated frontier objects and admit
//!   retained objects that only truncated ones dominated.
//! * **Compact** — the skyline-union compaction this module implements:
//!   bounded memory with **exact** backfill for every preference the
//!   monitor has ever observed.
//!
//! # Skyline-union compaction
//!
//! Two ideas make compaction exact where truncation is not:
//!
//! 1. **Value-duplicate collapsing.** Objects with identical attribute
//!    values are frontier-equivalent under *any* preference (identical
//!    objects never dominate each other, Def. 3.2), so the history stores
//!    each distinct value vector once, with the full id list attached.
//!    Replay reconstructs every id; this step loses nothing, ever.
//! 2. **Skyline-union eviction.** A vector group may be dropped only when,
//!    for **every** preference in the monitor's [`PreferenceUniverse`]
//!    (every distinct preference ever passed to the monitor — at
//!    construction, by `add_user` or by `update_user`; the universe never
//!    shrinks when users leave), some retained group dominates it. The
//!    retained set is therefore exactly the union of the observed
//!    preferences' skylines: for each observed preference `q`, dominance
//!    under `q` is transitive, so every eviction chain ascends to a
//!    `q`-skyline member, which is never evicted — replaying the retained
//!    set under `q` yields *precisely* the frontier of the full stream.
//!
//! Eviction is amortized: pushes are O(1) group inserts, and a lazy sweep
//! runs every `SWEEP_EVERY` (256) pushes (candidate dominators are
//! pre-filtered with the cheap [`PreferenceUniverse::union_dominates`] bit
//! test before the authoritative per-member checks).
//!
//! **The one inexact case.** Exactness is relative to the observed
//! universe: a backfill under a *never-seen* preference — whether it
//! carries relations outside the absorbed union or is merely a weaker
//! combination of seen tuples (the empty preference is the extreme case)
//! — may need an object that every observed preference had already voted
//! off. Compaction widens the universe *before* replaying such a backfill
//! (so the preference is protected from then on), but an object evicted
//! earlier cannot be resurrected.
//! This is documented, tested (`novel_preference_caveat` below), and
//! inherent: no bounded retention can be exact for arbitrary unseen
//! preferences, because a user with an empty preference needs every
//! distinct value vector. An optional hard cap bounds even adversarial
//! retained sets, trading back truncation's best-effort semantics for the
//! oldest objects once it bites.

use std::borrow::Cow;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use pm_model::{Object, ObjectId, ValueId};
use pm_obs::LogHistogram;
use pm_porder::{Preference, PreferenceUniverse};

use crate::monitor::HistoryState;

/// How often the compacting history sweeps, in pushes. Sweeps are O(G²)
/// union pre-filters plus per-member confirmations over the G retained
/// groups, so a few hundred pushes amortize one sweep comfortably.
const SWEEP_EVERY: usize = 256;

/// Retention discipline of an append-only monitor's object history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryMode {
    /// Keep every ingested object; backfill is exact for any preference.
    Unlimited,
    /// Keep the newest `C` objects; backfill is best-effort once the cap
    /// truncates (`Truncate(0)` retains nothing).
    Truncate(usize),
    /// Skyline-union compaction: keep the objects some observed preference
    /// still places on a frontier (plus all value-duplicates of them);
    /// backfill is exact for every observed preference. The optional `cap`
    /// is a hard bound on retained objects on top — once it bites, the
    /// smallest-id (= oldest, as ids double as arrival timestamps)
    /// retained objects are dropped and backfill degrades to the same
    /// best-effort contract as [`HistoryMode::Truncate`].
    Compact {
        /// Optional hard bound on retained objects (`None` = compaction
        /// alone bounds memory).
        cap: Option<usize>,
    },
}

impl HistoryMode {
    /// The mode the pre-compaction `history_limit` API maps to.
    pub fn from_limit(limit: Option<usize>) -> Self {
        match limit {
            Some(limit) => HistoryMode::Truncate(limit),
            None => HistoryMode::Unlimited,
        }
    }

    /// Whether this mode runs skyline-union compaction.
    pub fn is_compacting(&self) -> bool {
        matches!(self, HistoryMode::Compact { .. })
    }
}

/// The retained object history of an append-only monitor (see the module
/// docs for the three retention disciplines).
#[derive(Debug, Clone)]
pub struct History {
    mode: HistoryMode,
    /// Truncate/Unlimited storage: verbatim objects, oldest first.
    linear: VecDeque<Object>,
    /// Compact storage: one entry per distinct value vector, mapping it to
    /// every retained object id carrying it (in arrival order). The vector
    /// is stored exactly once — the map key *is* the group — which is where
    /// most of the memory reduction comes from on streams that repeat
    /// vectors. Ids live in a `VecDeque` because cap enforcement evicts
    /// from the front while pushes append at the back. Map iteration order
    /// is arbitrary; replay folds to the exact Pareto frontier of the
    /// retained set regardless, and sweep eviction is a set-level
    /// criterion, so nothing observable depends on the order.
    groups: HashMap<Vec<ValueId>, VecDeque<ObjectId>>,
    /// Every distinct preference ever observed; gates eviction.
    universe: PreferenceUniverse,
    /// The raw preferences behind the universe members, in first-observation
    /// order. The universe keeps only compiled members, so snapshots persist
    /// this list and recovery re-absorbs it to reconstruct the universe
    /// (absorb order does not affect eviction decisions — the criterion
    /// quantifies over all members — but a deterministic order keeps
    /// exports comparable).
    observed: Vec<Preference>,
    /// Retained ids across all groups (compact mode).
    retained: usize,
    /// Min-heap of `(group head id, group key)` eviction candidates,
    /// maintained only when a hard cap is configured. Entries go stale
    /// when a sweep removes their group or the head was already evicted;
    /// [`History::enforce_cap`] skips stale entries lazily, keeping cap
    /// eviction O(log G) amortized instead of a full group scan per push.
    cap_heap: BinaryHeap<Reverse<(ObjectId, Vec<ValueId>)>>,
    /// Pushes since the last sweep (compact mode).
    pending: usize,
    /// Lifetime count of objects dropped (truncation, compaction or cap).
    evicted: u64,
    /// Optional duration histogram for sweeps (nanoseconds); attached by
    /// the host via [`History::set_sweep_timer`]. When absent, sweeps do
    /// not even read the clock.
    sweep_timer: Option<Arc<LogHistogram>>,
}

impl History {
    /// An empty history with the given retention mode.
    pub fn new(mode: HistoryMode) -> Self {
        Self {
            mode,
            linear: VecDeque::new(),
            groups: HashMap::new(),
            universe: PreferenceUniverse::new(),
            observed: Vec::new(),
            retained: 0,
            cap_heap: BinaryHeap::new(),
            pending: 0,
            evicted: 0,
            sweep_timer: None,
        }
    }

    /// Attaches a duration histogram that every subsequent compaction
    /// sweep records into (nanoseconds per sweep); `None` detaches it.
    pub fn set_sweep_timer(&mut self, timer: Option<Arc<LogHistogram>>) {
        self.sweep_timer = timer;
    }

    /// The retention mode.
    pub fn mode(&self) -> HistoryMode {
        self.mode
    }

    /// Observes a preference (constructor, `add_user` or `update_user`):
    /// compacting histories absorb it into the eviction universe so every
    /// later sweep retains that preference's full-stream skyline. Returns
    /// `true` when no structurally identical preference was observed
    /// before — the novel case for which earlier sweeps offered no
    /// protection and already-evicted objects cannot be recovered (see
    /// the module docs). Non-compacting modes ignore the call and return
    /// `false`.
    pub fn observe(&mut self, preference: &Preference) -> bool {
        match self.mode {
            HistoryMode::Compact { .. } => {
                let novel = self.universe.absorb(preference);
                if novel {
                    self.observed.push(preference.clone());
                }
                novel
            }
            _ => false,
        }
    }

    /// Appends one object, evicting per the retention mode.
    pub fn push(&mut self, object: Object) {
        match self.mode {
            HistoryMode::Unlimited => self.linear.push_back(object),
            HistoryMode::Truncate(limit) => {
                self.linear.push_back(object);
                while self.linear.len() > limit {
                    self.linear.pop_front();
                    self.evicted += 1;
                }
            }
            HistoryMode::Compact { cap } => {
                match self.groups.get_mut(object.values()) {
                    Some(ids) => ids.push_back(object.id()),
                    None => {
                        let values = object.values().to_vec();
                        if cap.is_some() {
                            self.cap_heap.push(Reverse((object.id(), values.clone())));
                        }
                        self.groups.insert(values, VecDeque::from([object.id()]));
                    }
                }
                self.retained += 1;
                self.pending += 1;
                if self.pending >= SWEEP_EVERY {
                    self.sweep();
                }
                if let Some(cap) = cap {
                    self.enforce_cap(cap);
                }
            }
        }
    }

    /// Number of retained objects (ids, not groups).
    pub fn len(&self) -> usize {
        match self.mode {
            HistoryMode::Compact { .. } => self.retained,
            _ => self.linear.len(),
        }
    }

    /// Whether no object is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct value vectors retained (compact mode; equals
    /// [`History::len`] otherwise only by accident).
    pub fn num_groups(&self) -> usize {
        match self.mode {
            HistoryMode::Compact { .. } => self.groups.len(),
            _ => self.linear.len(),
        }
    }

    /// Lifetime count of objects dropped from the history (truncation,
    /// compaction sweeps and cap enforcement combined) — the "compaction
    /// savings" versus an unlimited history.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Estimated heap bytes held by the retained history. Linear modes pay
    /// one [`Object`] (id + value vector) per retained object; the compact
    /// mode pays each distinct value vector exactly once (the map key *is*
    /// the group) plus one id per retained object — which is where most of
    /// the memory reduction comes from on streams that repeat value
    /// vectors, on top of skyline-union eviction — plus, when a hard cap
    /// is configured, the cap heap's clone of each tracked group key (the
    /// heap is part of the retained-history footprint, and the CI
    /// retention-ratio gate compares this figure against the linear
    /// branch, so it must not be undercounted). An estimate of the payload
    /// allocations, not a precise allocator measurement.
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        match self.mode {
            HistoryMode::Compact { .. } => {
                let groups: u64 = self
                    .groups
                    .iter()
                    .map(|(values, ids)| {
                        (size_of::<Vec<ValueId>>()
                            + values.len() * size_of::<ValueId>()
                            + size_of::<VecDeque<ObjectId>>()
                            + ids.len() * size_of::<ObjectId>()
                            + size_of::<u64>()) as u64
                    })
                    .sum();
                let cap_heap: u64 = self
                    .cap_heap
                    .iter()
                    .map(|Reverse((_, values))| {
                        (size_of::<Reverse<(ObjectId, Vec<ValueId>)>>()
                            + values.len() * size_of::<ValueId>()) as u64
                    })
                    .sum();
                groups + cap_heap
            }
            _ => self
                .linear
                .iter()
                .map(|o| (size_of::<Object>() + std::mem::size_of_val(o.values())) as u64)
                .sum(),
        }
    }

    /// The retained object ids, ascending. Intended for tests and
    /// observability; replay uses [`History::iter`].
    pub fn retained_ids(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = match self.mode {
            HistoryMode::Compact { .. } => self
                .groups
                .values()
                .flat_map(|ids| ids.iter().copied())
                .collect(),
            _ => self.linear.iter().map(Object::id).collect(),
        };
        ids.sort_unstable();
        ids
    }

    /// Iterates over the retained objects for backfill replay. Linear
    /// modes yield borrowed objects oldest-first; the compacting mode
    /// reconstructs each retained id from its group (order is
    /// insertion-order by group — replay folds to the exact Pareto
    /// frontier of the retained set regardless of order).
    pub fn iter(&self) -> HistoryIter<'_> {
        HistoryIter {
            inner: match self.mode {
                HistoryMode::Compact { .. } => IterInner::Compact {
                    groups: self.groups.iter(),
                    current: None,
                },
                _ => IterInner::Linear(self.linear.iter()),
            },
        }
    }

    /// The retained value groups of a compacting history: each distinct
    /// value vector with its retained ids (arrival order). `None` for
    /// linear modes. Backfill replay uses this to dominance-test one
    /// representative per distinct vector and admit the whole id list on
    /// survival, instead of re-running the frontier scan per duplicate id.
    pub fn grouped(&self) -> Option<impl Iterator<Item = (&[ValueId], &VecDeque<ObjectId>)>> {
        match self.mode {
            HistoryMode::Compact { .. } => Some(
                self.groups
                    .iter()
                    .map(|(values, ids)| (values.as_slice(), ids)),
            ),
            _ => None,
        }
    }

    /// Exports the durable state: observed preferences (first-observation
    /// order), retained objects and the sweep/eviction counters. Compact
    /// histories flatten their groups to objects in ascending-id order so
    /// id-list multiplicity round-trips; linear histories keep arrival
    /// order.
    pub fn export_state(&self) -> HistoryState {
        let mut objects: Vec<Object> = self.iter().map(Cow::into_owned).collect();
        if self.mode.is_compacting() {
            objects.sort_by_key(Object::id);
        }
        HistoryState {
            observed: self.observed.clone(),
            objects,
            pending: self.pending as u64,
            evicted: self.evicted,
        }
    }

    /// Restores state exported by [`History::export_state`] verbatim,
    /// replacing any current content. No sweep runs during import and the
    /// pushes-since-last-sweep counter is restored, so the retained set
    /// and every subsequent sweep decision evolve exactly as they would
    /// have in an uninterrupted run. The retention mode is the receiver's
    /// (construct with the same mode as the exporter for a faithful
    /// restore).
    pub fn import_state(&mut self, state: HistoryState) {
        self.linear.clear();
        self.groups.clear();
        self.universe = PreferenceUniverse::new();
        self.observed.clear();
        self.retained = 0;
        self.cap_heap.clear();
        for preference in &state.observed {
            self.observe(preference);
        }
        match self.mode {
            HistoryMode::Compact { cap } => {
                for object in state.objects {
                    match self.groups.get_mut(object.values()) {
                        Some(ids) => ids.push_back(object.id()),
                        None => {
                            self.groups
                                .insert(object.values().to_vec(), VecDeque::from([object.id()]));
                        }
                    }
                    self.retained += 1;
                }
                // Group heads are the minimum ids (export sorts ascending),
                // so rebuilding from heads reproduces oldest-first cap
                // eviction order exactly.
                if cap.is_some() {
                    self.cap_heap = self
                        .groups
                        .iter()
                        .map(|(values, ids)| Reverse((ids[0], values.clone())))
                        .collect();
                }
            }
            _ => self.linear = state.objects.into(),
        }
        self.pending = usize::try_from(state.pending).unwrap_or(usize::MAX);
        self.evicted = state.evicted;
    }

    /// Runs a compaction sweep immediately (no-op for non-compacting
    /// modes). Pushes trigger sweeps automatically every `SWEEP_EVERY`
    /// (256) objects; this entry point exists for tests and for callers
    /// that want memory back right now.
    pub fn compact_now(&mut self) {
        if self.mode.is_compacting() {
            self.sweep();
        }
    }

    /// Evicts every group that is dominated, for **every** universe member,
    /// by some retained group. See the module docs for why simultaneous
    /// eviction is sound (per-member dominance chains ascend to that
    /// member's skyline, which is never evicted). Records the sweep
    /// duration when a timer is attached ([`History::set_sweep_timer`]).
    fn sweep(&mut self) {
        match self.sweep_timer.take() {
            Some(timer) => {
                let start = std::time::Instant::now();
                self.sweep_inner();
                timer.record_duration(start.elapsed());
                self.sweep_timer = Some(timer);
            }
            None => self.sweep_inner(),
        }
    }

    fn sweep_inner(&mut self) {
        self.pending = 0;
        // With no observed preference every object is potential frontier
        // (the first user to register could hold any preference), and a
        // member with an empty preference keeps *everything* on its
        // frontier — either way nothing is evictable, so skip the O(G²)
        // candidate pass entirely.
        if self.universe.is_empty() || self.universe.has_empty_member() || self.groups.len() < 2 {
            return;
        }
        let reps: Vec<Object> = self
            .groups
            .iter()
            .map(|(values, ids)| Object::new(ids[0], values.clone()))
            .collect();
        // Cheap necessary condition first: `j` can dominate `i` under some
        // member only if it dominates permissively under the union.
        let candidates: Vec<Vec<usize>> = (0..reps.len())
            .map(|i| {
                (0..reps.len())
                    .filter(|&j| j != i && self.universe.union_dominates(&reps[j], &reps[i]))
                    .collect()
            })
            .collect();
        let members = self.universe.members();
        let evict: Vec<bool> = (0..reps.len())
            .map(|i| {
                !candidates[i].is_empty()
                    && members.iter().all(|q| {
                        candidates[i]
                            .iter()
                            .any(|&j| q.dominates(&reps[j], &reps[i]))
                    })
            })
            .collect();
        for (i, rep) in reps.iter().enumerate() {
            if evict[i] {
                let ids = self
                    .groups
                    .remove(rep.values())
                    .expect("representative came from the map");
                self.retained -= ids.len();
                self.evicted += ids.len() as u64;
            }
        }
        // Sweep evictions stale out cap-heap entries that lazy
        // invalidation only reclaims while the cap binds; rebuild the heap
        // from the live group heads once the stale fraction dominates, so
        // the heap cannot grow without bound on long streams whose
        // compaction keeps them under the cap.
        if self.cap_heap.len() > 2 * self.groups.len() + 16 {
            self.cap_heap = self
                .groups
                .iter()
                .map(|(values, ids)| Reverse((ids[0], values.clone())))
                .collect();
        }
    }

    /// Drops retained objects until at most `cap` remain — the optional
    /// hard bound on top of compaction. Each step removes the head of the
    /// group whose head id is smallest (via the lazily-invalidated
    /// `cap_heap`, O(log G) amortized); ids double as arrival timestamps
    /// in this codebase ([`pm_model::ObjectId`]) and groups append in push
    /// order, so for id-ordered streams (every stream the engine mints)
    /// this is exactly oldest-first eviction. Callers pushing ids out of
    /// arrival order get smallest-head-first eviction instead.
    fn enforce_cap(&mut self, cap: usize) {
        while self.retained > cap {
            let Some(Reverse((head, key))) = self.cap_heap.pop() else {
                debug_assert!(
                    false,
                    "cap heap lost track of {} retained ids",
                    self.retained
                );
                return;
            };
            // Lazy invalidation: the group may have been swept away, or its
            // head may already have been cap-evicted earlier.
            let Some(ids) = self.groups.get_mut(&key) else {
                continue;
            };
            if ids[0] != head {
                continue;
            }
            ids.pop_front();
            self.retained -= 1;
            self.evicted += 1;
            if ids.is_empty() {
                self.groups.remove(&key);
            } else {
                let next_head = ids[0];
                self.cap_heap.push(Reverse((next_head, key)));
            }
        }
    }
}

/// Iterator over a [`History`]'s retained objects (see [`History::iter`]).
/// Linear histories yield borrowed objects; compacting histories
/// reconstruct each retained id from its value group.
pub struct HistoryIter<'a> {
    inner: IterInner<'a>,
}

enum IterInner<'a> {
    /// Borrowed objects of a truncating/unlimited history, oldest first.
    Linear(std::collections::vec_deque::Iter<'a, Object>),
    /// Reconstructed objects of a compacting history, group by group.
    Compact {
        groups: std::collections::hash_map::Iter<'a, Vec<ValueId>, VecDeque<ObjectId>>,
        current: Option<(&'a Vec<ValueId>, &'a VecDeque<ObjectId>, usize)>,
    },
}

impl<'a> Iterator for HistoryIter<'a> {
    type Item = Cow<'a, Object>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            IterInner::Linear(iter) => iter.next().map(Cow::Borrowed),
            IterInner::Compact { groups, current } => loop {
                if let Some((values, ids, next)) = current {
                    if let Some(&id) = ids.get(*next) {
                        *next += 1;
                        return Some(Cow::Owned(Object::new(id, values.clone())));
                    }
                    *current = None;
                }
                match groups.next() {
                    Some((values, ids)) => *current = Some((values, ids, 0)),
                    None => return None,
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_model::AttrId;
    use pm_porder::naive_pareto_frontier;

    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    fn a(i: u32) -> AttrId {
        AttrId::new(i)
    }

    fn obj(id: u64, vals: &[u32]) -> Object {
        Object::new(ObjectId::new(id), vals.iter().map(|&x| v(x)).collect())
    }

    fn chain_pref(attr: u32, order: &[u32]) -> Preference {
        let mut p = Preference::new(2);
        for w in order.windows(2) {
            p.prefer(a(attr), v(w[0]), v(w[1]));
        }
        p
    }

    fn collect(history: &History) -> Vec<Object> {
        let mut objects: Vec<Object> = history.iter().map(Cow::into_owned).collect();
        objects.sort_by_key(Object::id);
        objects
    }

    #[test]
    fn truncate_drops_oldest_and_counts_evictions() {
        let mut h = History::new(HistoryMode::Truncate(3));
        for i in 0..5 {
            h.push(obj(i, &[i as u32, 0]));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.evicted(), 2);
        assert_eq!(
            h.retained_ids(),
            vec![ObjectId::new(2), ObjectId::new(3), ObjectId::new(4)]
        );
    }

    #[test]
    fn truncate_zero_retains_nothing() {
        let mut h = History::new(HistoryMode::Truncate(0));
        h.push(obj(0, &[1, 1]));
        h.push(obj(1, &[2, 2]));
        assert!(h.is_empty());
        assert_eq!(h.evicted(), 2);
        assert!(h.iter().next().is_none());
    }

    #[test]
    fn compact_collapses_value_duplicates_with_multiplicity() {
        let mut h = History::new(HistoryMode::Compact { cap: None });
        for i in 0..6 {
            h.push(obj(i, &[(i % 2) as u32, 0]));
        }
        assert_eq!(h.len(), 6, "every id is retained");
        assert_eq!(h.num_groups(), 2, "two distinct vectors");
        let objects = collect(&h);
        assert_eq!(objects.len(), 6);
        for o in &objects {
            assert_eq!(o.values()[0], v((o.id().raw() % 2) as u32));
        }
    }

    #[test]
    fn sweep_retains_exactly_the_skyline_union() {
        // Two observed preferences with opposite tastes on attr 0; attr 1
        // constant. Objects 0..4 carry values 0..4.
        let up = chain_pref(0, &[0, 1, 2, 3, 4]);
        let down = chain_pref(0, &[4, 3, 2, 1, 0]);
        let mut h = History::new(HistoryMode::Compact { cap: None });
        h.observe(&up);
        h.observe(&down);
        let objects: Vec<Object> = (0..5).map(|i| obj(i, &[i as u32, 7])).collect();
        for o in &objects {
            h.push(o.clone());
        }
        h.compact_now();
        // Skyline(up) = {value 0} = o0; skyline(down) = {value 4} = o4.
        assert_eq!(
            h.retained_ids(),
            vec![ObjectId::new(0), ObjectId::new(4)],
            "only the two skyline extremes survive"
        );
        assert_eq!(h.evicted(), 3);
        // Replay under both observed preferences is exact vs full history.
        for pref in [&up, &down] {
            let retained = collect(&h);
            let mut got = naive_pareto_frontier(pref, &retained);
            got.sort_unstable();
            let mut want = naive_pareto_frontier(pref, &objects);
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn sweep_without_observed_preferences_retains_everything() {
        let mut h = History::new(HistoryMode::Compact { cap: None });
        for i in 0..10 {
            h.push(obj(i, &[i as u32, 0]));
        }
        h.compact_now();
        assert_eq!(h.len(), 10, "no preference observed, nothing evictable");
        assert_eq!(h.evicted(), 0);
    }

    #[test]
    fn empty_observed_preference_blocks_all_eviction() {
        // A user with an empty preference has *every* object on its
        // frontier, so compaction must keep everything.
        let mut h = History::new(HistoryMode::Compact { cap: None });
        h.observe(&chain_pref(0, &[0, 1, 2]));
        h.observe(&Preference::new(2));
        for i in 0..3 {
            h.push(obj(i, &[i as u32, 0]));
        }
        h.compact_now();
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn cross_member_union_mix_does_not_evict() {
        // Member A prefers on attr 0 only, member B on attr 1 only. The
        // union would permissively let (0,2) dominate (1,3), but no single
        // member does — the object must survive (it is on both skylines).
        let mut pa = Preference::new(2);
        pa.prefer(a(0), v(0), v(1));
        let mut pb = Preference::new(2);
        pb.prefer(a(1), v(2), v(3));
        let mut h = History::new(HistoryMode::Compact { cap: None });
        h.observe(&pa);
        h.observe(&pb);
        h.push(obj(0, &[0, 2]));
        h.push(obj(1, &[1, 3]));
        h.compact_now();
        assert_eq!(h.len(), 2, "cross-member mixing must not evict");
    }

    #[test]
    fn observe_reports_never_seen_preferences_as_novel() {
        let mut h = History::new(HistoryMode::Compact { cap: None });
        let p = chain_pref(0, &[0, 1, 2]);
        assert!(h.observe(&p), "first observation is novel");
        assert!(!h.observe(&p), "a member is not");
        // A weaker subset of seen tuples is still a never-seen preference:
        // earlier sweeps did not protect its skyline (the reviewer's
        // within-union counterexample), so it must be flagged novel.
        assert!(
            h.observe(&chain_pref(0, &[0, 1])),
            "covered subset is novel"
        );
        assert!(h.observe(&Preference::new(2)), "unseen empty is novel too");
        assert!(h.observe(&chain_pref(1, &[5, 6])), "new attribute is");
        // Truncating histories never report novelty (they do not compact).
        let mut t = History::new(HistoryMode::Truncate(4));
        assert!(!t.observe(&p));
    }

    #[test]
    fn never_seen_weaker_preference_backfill_is_the_same_caveat() {
        // Universe member: 0 ≻ 1 and 0 ≻ 2 on attr 0. The sweep evicts
        // (2,·) — dominated for the only member. A never-seen *subset*
        // preference {0 ≻ 1} (fully inside the union) then needs (2,·):
        // replay is inexact, exactly the documented novel-preference
        // caveat even though no union edge is new.
        let mut strong = Preference::new(2);
        strong.prefer(a(0), v(0), v(1));
        strong.prefer(a(0), v(0), v(2));
        let mut h = History::new(HistoryMode::Compact { cap: None });
        h.observe(&strong);
        h.push(obj(0, &[0, 7]));
        h.push(obj(1, &[2, 7]));
        h.compact_now();
        assert_eq!(h.retained_ids(), vec![ObjectId::new(0)]);
        let mut weak = Preference::new(2);
        weak.prefer(a(0), v(0), v(1));
        assert!(h.observe(&weak), "within-union but never seen => novel");
        let replayed = naive_pareto_frontier(&weak, &collect(&h));
        assert_eq!(replayed, vec![ObjectId::new(0)], "exactness lost, once");
        let full = naive_pareto_frontier(&weak, &[obj(0, &[0, 7]), obj(1, &[2, 7])]);
        assert_eq!(full, vec![ObjectId::new(0), ObjectId::new(1)]);
    }

    #[test]
    fn novel_preference_caveat_is_the_one_inexact_case() {
        // Observed: 0 ≻ 1 on attr 0. Objects o0=(0,7), o1=(1,7): o1 is
        // evicted (dominated for every observed preference).
        let up = chain_pref(0, &[0, 1]);
        let mut h = History::new(HistoryMode::Compact { cap: None });
        h.observe(&up);
        h.push(obj(0, &[0, 7]));
        h.push(obj(1, &[1, 7]));
        h.compact_now();
        assert_eq!(h.retained_ids(), vec![ObjectId::new(0)]);
        // A genuinely novel preference (the reverse order) arrives: its
        // full-stream frontier is {o1}, but o1 is gone — replay over the
        // retained set yields {o0}. This is the documented caveat: the
        // widened universe protects the *future* …
        let down = chain_pref(0, &[1, 0]);
        assert!(h.observe(&down), "reverse tuple is novel");
        let retained = collect(&h);
        let replayed = naive_pareto_frontier(&down, &retained);
        assert_eq!(replayed, vec![ObjectId::new(0)], "exactness lost, once");
        let full = naive_pareto_frontier(&down, &[obj(0, &[0, 7]), obj(1, &[1, 7])]);
        assert_eq!(full, vec![ObjectId::new(1)]);
        // … from here on the reverse order gates eviction: a fresh pair of
        // the same values now keeps the 1-valued object.
        h.push(obj(2, &[0, 8]));
        h.push(obj(3, &[1, 8]));
        h.compact_now();
        assert!(h.retained_ids().contains(&ObjectId::new(3)));
    }

    #[test]
    fn cap_eviction_skips_heap_entries_invalidated_by_sweeps() {
        // 1 ≻ 0 on attr 0: group (0,9) is sweep-evicted while its cap-heap
        // entry (the smallest head id of all) is still enqueued. The next
        // cap eviction must skip that stale entry and evict the genuinely
        // oldest retained object instead.
        let up = chain_pref(0, &[1, 0]);
        let mut h = History::new(HistoryMode::Compact { cap: Some(2) });
        h.observe(&up);
        h.push(obj(0, &[0, 9]));
        h.push(obj(1, &[1, 9]));
        h.compact_now();
        assert_eq!(h.retained_ids(), vec![ObjectId::new(1)]);
        h.push(obj(2, &[1, 8]));
        h.push(obj(3, &[1, 7]));
        assert_eq!(h.len(), 2);
        assert_eq!(
            h.retained_ids(),
            vec![ObjectId::new(2), ObjectId::new(3)],
            "stale entry for the swept group must not stall cap eviction"
        );
        assert_eq!(h.evicted(), 2);
    }

    #[test]
    fn hard_cap_on_top_drops_oldest_first() {
        // Opposite chains keep all five values on the skyline union; the
        // cap then drops the oldest ids regardless.
        let mut h = History::new(HistoryMode::Compact { cap: Some(3) });
        h.observe(&chain_pref(0, &[0, 1, 2, 3, 4]));
        h.observe(&chain_pref(0, &[4, 3, 2, 1, 0]));
        for i in 0..5 {
            h.push(obj(i, &[1, i as u32]));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(
            h.retained_ids(),
            vec![ObjectId::new(2), ObjectId::new(3), ObjectId::new(4)]
        );
        assert_eq!(h.evicted(), 2);
    }

    #[test]
    fn automatic_sweep_triggers_on_push_volume() {
        let up = chain_pref(0, &[0, 1]);
        let mut h = History::new(HistoryMode::Compact { cap: None });
        h.observe(&up);
        // Alternate dominated and dominating vectors well past the sweep
        // interval: the dominated group must be evicted without any manual
        // compact_now call.
        for i in 0..(2 * super::SWEEP_EVERY as u64) {
            h.push(obj(i, &[(i % 2) as u32, 3]));
        }
        assert!(
            h.evicted() > 0,
            "lazy sweep never ran over {} pushes",
            2 * super::SWEEP_EVERY
        );
        assert!(h.retained_ids().iter().all(|id| id.raw() % 2 == 0));
    }

    #[test]
    fn approx_bytes_counts_cap_heap_key_clones() {
        use std::mem::size_of;
        // Identical streams; only the hard cap differs. The capped history
        // clones every group key into its eviction heap, and that memory
        // must show up in the estimate (the CI retention-ratio gate
        // compares compact and linear footprints like with like).
        let mut capped = History::new(HistoryMode::Compact { cap: Some(100) });
        let mut uncapped = History::new(HistoryMode::Compact { cap: None });
        for i in 0..4u64 {
            capped.push(obj(i, &[i as u32, 0]));
            uncapped.push(obj(i, &[i as u32, 0]));
        }
        assert_eq!(capped.retained_ids(), uncapped.retained_ids());
        let per_entry = |values: usize| {
            (size_of::<Reverse<(ObjectId, Vec<ValueId>)>>() + values * size_of::<ValueId>()) as u64
        };
        assert_eq!(
            capped.approx_bytes(),
            uncapped.approx_bytes() + 4 * per_entry(2),
            "one heap entry (tuple + cloned 2-value key) per group"
        );
        // Without a cap the heap is empty and both estimates agree.
        assert_eq!(
            uncapped.approx_bytes(),
            {
                let mut h = History::new(HistoryMode::Compact { cap: None });
                for i in 0..4u64 {
                    h.push(obj(i, &[i as u32, 0]));
                }
                h.approx_bytes()
            },
            "uncapped estimate is unchanged by the fix"
        );
    }

    #[test]
    fn export_import_roundtrip_is_verbatim() {
        let up = chain_pref(0, &[0, 1, 2]);
        let down = chain_pref(0, &[2, 1, 0]);
        let mut h = History::new(HistoryMode::Compact { cap: None });
        h.observe(&up);
        h.push(obj(0, &[0, 7]));
        h.push(obj(1, &[1, 7]));
        h.push(obj(2, &[2, 7]));
        h.push(obj(3, &[0, 7]));
        h.compact_now();
        h.observe(&down);
        h.push(obj(4, &[1, 7]));
        let exported = h.export_state();
        assert_eq!(exported.evicted, h.evicted());
        let mut restored = History::new(HistoryMode::Compact { cap: None });
        restored.import_state(exported.clone());
        assert_eq!(restored.retained_ids(), h.retained_ids());
        assert_eq!(restored.num_groups(), h.num_groups());
        assert_eq!(restored.evicted(), h.evicted());
        assert_eq!(restored.approx_bytes(), h.approx_bytes());
        assert_eq!(
            restored.export_state(),
            exported,
            "a second export is identical — import was verbatim"
        );
        // The restored history keeps evolving exactly like the original:
        // same pushes, same sweep outcome.
        h.push(obj(5, &[2, 8]));
        restored.push(obj(5, &[2, 8]));
        h.compact_now();
        restored.compact_now();
        assert_eq!(restored.retained_ids(), h.retained_ids());
        assert_eq!(restored.evicted(), h.evicted());
    }

    #[test]
    fn export_import_roundtrip_linear_modes() {
        let mut h = History::new(HistoryMode::Truncate(3));
        for i in 0..5 {
            h.push(obj(i, &[i as u32, 0]));
        }
        let mut restored = History::new(HistoryMode::Truncate(3));
        restored.import_state(h.export_state());
        assert_eq!(restored.retained_ids(), h.retained_ids());
        assert_eq!(restored.evicted(), h.evicted());
        assert_eq!(restored.export_state(), h.export_state());
    }

    #[test]
    fn import_restores_cap_heap_for_capped_histories() {
        let mut h = History::new(HistoryMode::Compact { cap: Some(2) });
        for i in 0..4 {
            h.push(obj(i, &[i as u32, 0]));
        }
        assert_eq!(h.retained_ids(), vec![ObjectId::new(2), ObjectId::new(3)]);
        let mut restored = History::new(HistoryMode::Compact { cap: Some(2) });
        restored.import_state(h.export_state());
        // The rebuilt heap must keep enforcing oldest-first eviction.
        restored.push(obj(4, &[9, 9]));
        assert_eq!(
            restored.retained_ids(),
            vec![ObjectId::new(3), ObjectId::new(4)]
        );
    }

    #[test]
    fn reappearing_evicted_vector_is_evicted_again() {
        let up = chain_pref(0, &[0, 1]);
        let mut h = History::new(HistoryMode::Compact { cap: None });
        h.observe(&up);
        h.push(obj(0, &[0, 0]));
        h.push(obj(1, &[1, 0]));
        h.compact_now();
        assert_eq!(h.len(), 1);
        h.push(obj(2, &[1, 0]));
        assert_eq!(h.len(), 2, "re-pushed vector forms a fresh group");
        h.compact_now();
        assert_eq!(h.retained_ids(), vec![ObjectId::new(0)]);
    }
}
