//! # pm-core
//!
//! Continuous monitoring of Pareto frontiers on partially ordered attributes
//! for many users — the primary contribution of Sultana & Li (EDBT 2018).
//!
//! Given a set of users whose preferences are strict partial orders (one per
//! attribute) and a stream of objects, a monitor answers, for every arriving
//! object, the set of *target users*: the users for whom the object is
//! Pareto-optimal (Def. 3.4).
//!
//! Implemented algorithms:
//!
//! | Paper | Type | Semantics |
//! |-------|------|-----------|
//! | Alg. 1 `Baseline` | [`BaselineMonitor`] | append-only, per-user maintenance |
//! | Alg. 2 `FilterThenVerify` | [`FilterThenVerifyMonitor`] | append-only, shared cluster filter |
//! | Sec. 6 `FilterThenVerifyApprox` | [`FilterThenVerifyMonitor`] built via [`FilterThenVerifyMonitor::with_approx_clusters`] | append-only, approximate common preferences |
//! | Alg. 4 `BaselineSW` | [`BaselineSwMonitor`] | sliding window, per-user buffers |
//! | Alg. 5 `FilterThenVerifySW` | [`FilterThenVerifySwMonitor`] | sliding window, shared cluster buffers |
//! | Sec. 7+6 `FilterThenVerifyApproxSW` | [`FilterThenVerifySwMonitor`] built via [`FilterThenVerifySwMonitor::with_approx_clusters`] | sliding window, approximate common preferences |
//!
//! The [`accuracy`] module computes the precision / recall / F-measure used
//! by Tables 11 and 12 of the paper to quantify the cost of approximation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod baseline;
pub mod delta;
pub mod filter_then_verify;
pub mod history;
pub mod monitor;
pub mod sliding_window;
pub mod stats;
pub mod timers;

pub use accuracy::{AccuracyReport, ConfusionMatrix};
pub use baseline::BaselineMonitor;
pub use delta::FrontierDelta;
pub use filter_then_verify::FilterThenVerifyMonitor;
pub use history::{History, HistoryMode};
pub use monitor::{Arrival, ContinuousMonitor, HistoryState, MonitorState};
pub use sliding_window::{BaselineSwMonitor, FilterThenVerifySwMonitor};
pub use stats::MonitorStats;
pub use timers::MonitorTimers;
