//! Deterministic case runner.

/// Configuration of a property test (mirrors `proptest::test_runner::Config`
//  for the fields this workspace uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The per-case random source handed to strategies (`xoshiro256++`).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub(crate) fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniform draw from `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot draw below zero");
        self.next_u64() % bound
    }
}

/// Runs a property body over `config.cases` deterministically seeded cases.
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// Creates a runner.
    pub fn new(config: Config) -> Self {
        Self { config }
    }

    /// Invokes `body` once per case with a case-specific [`TestRng`]. Any
    /// panic in the body fails the surrounding `#[test]` immediately.
    pub fn run<F: FnMut(&mut TestRng)>(&mut self, mut body: F) {
        for case in 0..self.config.cases {
            let seed =
                0xA076_1D64_78BD_642Fu64 ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::from_seed(seed);
            body(&mut rng);
        }
    }
}
