//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Acceptable size arguments for [`vec()`]: an exact `usize` or a
/// half-open `Range<usize>`.
pub trait IntoSizeRange {
    /// Lower bound (inclusive) and upper bound (exclusive).
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// A strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    assert!(min < max, "cannot generate from empty size range");
    VecStrategy { element, min, max }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.max - self.min) as u64;
        let len = self.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
