//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Something that can generate values of a type from a random source.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy that post-processes this one's values with `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, map }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot generate from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// A strategy that always yields clones of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
