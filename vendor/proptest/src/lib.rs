//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in containers without access to a crates.io mirror,
//! so the subset of the proptest API our property tests use is
//! re-implemented here: the [`proptest!`] macro (including
//! `#![proptest_config(...)]`), range / tuple / [`collection::vec`]
//! strategies, [`Strategy::prop_map`](crate::strategy::Strategy::prop_map), and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a fixed deterministic seed per case (reproducible CI, no
//! persistence files), and there is **no shrinking** — a failing case panics
//! with the generated values left to the assertion message. Swap the real
//! `proptest` back in via `[workspace.dependencies]` when the build has
//! network access.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test that evaluates `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_funcs!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_funcs!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_funcs {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run(|rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
            });
        }
        $crate::__proptest_funcs!($cfg; $($rest)*);
    };
}

/// Asserts a condition inside a property test (panics on failure; this
/// stand-in performs no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range and tuple strategies stay in bounds.
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..7, 1usize..4), c in 0u64..9) {
            prop_assert!(a < 7);
            prop_assert!((1..4).contains(&b));
            prop_assert!(c < 9, "c = {c}");
        }

        /// Vec strategies honour exact and ranged sizes; prop_map applies.
        #[test]
        fn vecs_and_maps(
            exact in crate::collection::vec(0u32..5, 3),
            ranged in crate::collection::vec(0u32..5, 1..6),
            doubled in (0u32..10).prop_map(|x| x * 2),
        ) {
            prop_assert_eq!(exact.len(), 3);
            prop_assert!((1..6).contains(&ranged.len()));
            prop_assert!(doubled % 2 == 0);
            prop_assert_ne!(doubled, 19);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(5));
            runner.run(|rng| out.push(rng.next_u64()));
        }
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }
}
