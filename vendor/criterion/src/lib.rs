//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds in containers without access to a crates.io mirror,
//! so the subset of the Criterion API our benches use is re-implemented here
//! as a plain timing harness: warm-up, `sample_size` timed samples per
//! benchmark, and a one-line report (mean / min / max, plus throughput when
//! configured) on stdout. There is no statistical analysis, no HTML report
//! and no baseline comparison — swap the real `criterion` back in via
//! `[workspace.dependencies]` when the build has network access.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new<P: fmt::Display>(name: impl Into<String>, parameter: P) -> Self {
        Self {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id with no parameter part.
    pub fn from_name(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) => write!(f, "{}/{}", self.name, p),
            None => write!(f, "{}", self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self::from_name(name)
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self::from_name(name)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Accepted for API compatibility with `criterion::BatchSize`; this harness
/// always runs setup once per sample.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: warm-up for the configured duration, then one timed call
    /// per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.iter_batched(|| (), |()| f(), BatchSize::PerIteration);
    }

    /// Times `routine` on inputs produced by `setup`; only the routine is
    /// inside the timed region — setup cost and the drop of the routine's
    /// output are excluded (so a routine can return its expensive state to
    /// keep teardown out of the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            let input = setup();
            std_black_box(routine(input));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let output = std_black_box(routine(input));
            self.samples.push(start.elapsed());
            drop(output);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this harness times a fixed number of
    /// samples rather than a target duration.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Warm-up duration before the timed samples.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn bencher(&self) -> Bencher {
        if self.criterion.test_mode {
            Bencher {
                sample_size: 1,
                warm_up_time: Duration::ZERO,
                samples: Vec::new(),
            }
        } else {
            Bencher {
                sample_size: self.sample_size,
                warm_up_time: self.warm_up_time,
                samples: Vec::new(),
            }
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = self.bencher();
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, V, F>(&mut self, id: I, input: &V, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        V: ?Sized,
        F: FnMut(&mut Bencher, &V),
    {
        let id = id.into();
        let mut bencher = self.bencher();
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    fn report(&mut self, id: &BenchmarkId, samples: &[Duration]) {
        self.criterion.benchmarks_run += 1;
        if samples.is_empty() {
            println!(
                "{}/{id}: no samples (Bencher::iter never called)",
                self.name
            );
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = *samples.iter().min().expect("non-empty");
        let max = *samples.iter().max().expect("non-empty");
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("   thrpt: {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("   thrpt: {:.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: time: [{} {} {}]{throughput}",
            self.name,
            format_duration(min),
            format_duration(mean),
            format_duration(max),
        );
    }

    /// Ends the group (printing is incremental, so this is bookkeeping
    /// only).
    pub fn finish(self) {}
}

/// The top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    benchmarks_run: usize,
    /// `cargo test` / `cargo bench -- --test` smoke mode: run every
    /// benchmark routine exactly once, without warm-up, so panics and
    /// deadlocks in bench paths are still caught.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            benchmarks_run: 0,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Number of benchmarks executed so far.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Declares a group function running the given benchmark functions, like
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups, like
/// `criterion::criterion_main!`. Ignores harness CLI arguments (`--bench`,
/// filters) that `cargo bench`/`cargo test` pass to the binary; `--test`
/// switches [`Criterion`] into its one-pass smoke mode.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(c.benchmarks_run(), 2);
    }

    #[test]
    fn test_mode_runs_each_routine_exactly_once() {
        let mut c = Criterion {
            benchmarks_run: 0,
            test_mode: true,
        };
        let calls = std::cell::Cell::new(0u32);
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(50)
            .warm_up_time(Duration::from_millis(100));
        group.bench_function("counted", |b| b.iter(|| calls.set(calls.get() + 1)));
        group.finish();
        assert_eq!(calls.get(), 1, "test mode must run one pass, no warm-up");
        assert_eq!(c.benchmarks_run(), 1);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_name("g").to_string(), "g");
        assert_eq!(BenchmarkId::from("h").to_string(), "h");
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
