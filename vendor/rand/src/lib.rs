//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in containers without network access to a crates.io
//! mirror, so the handful of `rand` APIs the workspace actually uses are
//! re-implemented here on top of `xoshiro256++`: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over float/integer ranges, and [`Rng::gen_bool`].
//!
//! The implementation is deliberately simple and fully deterministic for a
//! given seed, which is all `pm-datagen` needs (its own tests pin dataset
//! determinism, not the exact byte stream of upstream `rand`). It is NOT a
//! cryptographic or statistically audited generator; do not use it outside
//! this workspace.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A uniformly sampleable range, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self) < p
    }

    /// Draws a uniformly distributed `u64`.
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: `xoshiro256++` seeded via
    /// SplitMix64. Deterministic for a given seed; not the same stream as
    /// upstream `rand`'s `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ];
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let [mut s0, mut s1, mut s2, mut s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sames = (0..64).filter(|_| a.gen_u64() == b.gen_u64()).count();
        assert_eq!(sames, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1.0..=5.0);
            assert!((1.0..=5.0).contains(&g));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0usize..10)
        }
        assert!(draw(&mut rng) < 10);
    }
}
